// Shared-receive-queue coverage: verbs-level SRQ semantics (shared ring,
// FIFO consumption across QPs, RNR parking, low-watermark limit events,
// teardown drain), and the RPCoIB server rebuilt on it — registered
// receive memory flat in connection count, backpressure under a tiny ring,
// idle-connection eviction with transparent client re-bootstrap, legacy
// per-QP-ring mode, and seed determinism of the srq.* counters.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/testbed.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"
#include "verbs/verbs.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Byte;
using net::Bytes;
using net::Testbed;
using sim::Co;
using sim::Scheduler;
using sim::Task;

// --- Verbs-level SRQ units --------------------------------------------------

/// `n` client QPs bootstrapped one at a time (unambiguous pairing), all
/// server ends attached to one SRQ with qp_context = index + 1.
struct SrqFixture {
  SrqFixture(Scheduler& s, int n)
      : sched(s),
        tb(s, Testbed::cluster_b()),
        stack(tb.fabric()),
        cm(stack, tb.sockets()),
        srq(s),
        server_scq(s),
        server_rcq(s) {
    net::Listener& l = tb.sockets().listen({1, 7100});
    for (int i = 0; i < n; ++i) {
      client_scq.push_back(std::make_unique<verbs::CompletionQueue>(s));
      client_rcq.push_back(std::make_unique<verbs::CompletionQueue>(s));
      verbs::QueuePairPtr sq, cq;
      s.spawn(accept_one(l, sq));
      s.spawn(connect_one(i, cq));
      s.run();
      sq->set_srq(&srq);
      sq->set_context(static_cast<std::uint64_t>(i) + 1);
      server_qps.push_back(std::move(sq));
      client_qps.push_back(std::move(cq));
    }
  }

  Task accept_one(net::Listener& l, verbs::QueuePairPtr& out) {
    net::SocketPtr boot = co_await l.accept();
    out = co_await cm.accept(boot, server_scq, server_rcq);
  }
  Task connect_one(int i, verbs::QueuePairPtr& out) {
    out = co_await cm.connect(tb.host(0), {1, 7100}, *client_scq[i], *client_rcq[i]);
  }

  Scheduler& sched;
  Testbed tb;
  verbs::VerbsStack stack;
  verbs::ConnectionManager cm;
  verbs::SharedReceiveQueue srq;
  verbs::CompletionQueue server_scq, server_rcq;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> client_scq, client_rcq;
  std::vector<verbs::QueuePairPtr> server_qps, client_qps;
};

Task do_send(verbs::QueuePairPtr qp, Bytes payload) { co_await qp->post_send(1, payload); }

Bytes pattern(std::size_t n, int seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<Byte>(i * 7 + seed);
  return b;
}

TEST(SharedReceiveQueue, SendsFromDifferentQpsConsumeOneRingFifo) {
  Scheduler s;
  SrqFixture f(s, 2);

  Bytes r1(64), r2(64);
  f.srq.post_recv(11, r1);
  f.srq.post_recv(12, r2);
  EXPECT_EQ(f.srq.posted(), 2u);

  Bytes m1 = pattern(16, 1), m2 = pattern(24, 2);
  s.spawn(do_send(f.client_qps[0], m1));
  s.spawn(do_send(f.client_qps[1], m2));
  s.run();

  // Ring buffers are consumed in posting order; each completion names its
  // connection via qp_context (the wr_id only names the shared buffer).
  verbs::WorkCompletion wc;
  ASSERT_TRUE(f.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_EQ(wc.qp_context, 1u);
  EXPECT_EQ(wc.byte_len, m1.size());
  EXPECT_EQ(0, std::memcmp(r1.data(), m1.data(), m1.size()));
  ASSERT_TRUE(f.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 12u);
  EXPECT_EQ(wc.qp_context, 2u);
  EXPECT_EQ(0, std::memcmp(r2.data(), m2.data(), m2.size()));
  EXPECT_EQ(f.srq.posted(), 0u);
  EXPECT_EQ(f.srq.rnr_stalls(), 0u);
}

TEST(SharedReceiveQueue, EmptyRingParksArrivalsAndDrainsInArrivalOrder) {
  Scheduler s;
  SrqFixture f(s, 2);

  Bytes m1 = pattern(16, 1), m2 = pattern(16, 2);
  s.spawn(do_send(f.client_qps[0], m1));
  s.run();
  s.spawn(do_send(f.client_qps[1], m2));
  s.run();

  // RNR: both arrivals found the ring dry and parked.
  verbs::WorkCompletion wc;
  EXPECT_FALSE(f.server_rcq.poll(wc));
  EXPECT_EQ(f.srq.rnr_stalls(), 2u);

  // Buffers posted later satisfy parked QPs in arrival order.
  Bytes r1(64), r2(64);
  f.srq.post_recv(21, r1);
  ASSERT_TRUE(f.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 21u);
  EXPECT_EQ(wc.qp_context, 1u);
  EXPECT_EQ(0, std::memcmp(r1.data(), m1.data(), m1.size()));
  f.srq.post_recv(22, r2);
  ASSERT_TRUE(f.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 22u);
  EXPECT_EQ(wc.qp_context, 2u);
  EXPECT_EQ(0, std::memcmp(r2.data(), m2.data(), m2.size()));
}

Task limit_watcher(verbs::SharedReceiveQueue& srq, int& fires) {
  try {
    for (;;) {
      co_await srq.wait_limit();
      ++fires;
    }
  } catch (const sim::ChannelClosed&) {
  }
}

TEST(SharedReceiveQueue, LimitEventIsOneShotAndRearmBelowFiresImmediately) {
  Scheduler s;
  SrqFixture f(s, 1);

  std::vector<Bytes> rbufs(4, Bytes(64));
  for (std::size_t i = 0; i < rbufs.size(); ++i) {
    f.srq.post_recv(i + 1, rbufs[i]);
  }
  f.srq.arm_limit(2);
  int fires = 0;
  s.spawn(limit_watcher(f.srq, fires));

  // Consuming 4 -> 3 -> 2 crosses nothing; 2 -> 1 drops below the
  // watermark and fires exactly once (the event then disarms).
  for (int i = 0; i < 3; ++i) s.spawn(do_send(f.client_qps[0], pattern(8, i)));
  s.run();
  EXPECT_EQ(fires, 1);
  s.spawn(do_send(f.client_qps[0], pattern(8, 9)));
  s.run();
  EXPECT_EQ(fires, 1);  // still disarmed: no second event at 1 -> 0

  // Re-arming while already below the watermark fires immediately.
  f.srq.arm_limit(2);
  s.run();
  EXPECT_EQ(fires, 2);

  f.srq.close();
  s.run();  // watcher exits via ChannelClosed
}

TEST(SharedReceiveQueue, DrainReturnsAllPostedWrIds) {
  Scheduler s;
  SrqFixture f(s, 0);
  std::vector<Bytes> rbufs(3, Bytes(32));
  for (std::size_t i = 0; i < rbufs.size(); ++i) f.srq.post_recv(50 + i, rbufs[i]);
  const std::vector<std::uint64_t> ids = f.srq.drain_posted_recvs();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 50u);
  EXPECT_EQ(ids[2], 52u);
  EXPECT_EQ(f.srq.posted(), 0u);
}

TEST(SharedReceiveQueue, PostRecvOnAttachedQpThrowsAndDetachRestoresIt) {
  Scheduler s;
  SrqFixture f(s, 1);
  Bytes rbuf(64);
  // Like real verbs: a QP attached to an SRQ has no receive queue of its own.
  EXPECT_THROW(f.server_qps[0]->post_recv(1, rbuf), verbs::VerbsError);
  f.server_qps[0]->set_srq(nullptr);
  f.server_qps[0]->post_recv(77, rbuf);
  Bytes msg = pattern(16, 3);
  s.spawn(do_send(f.client_qps[0], msg));
  s.run();
  verbs::WorkCompletion wc;
  ASSERT_TRUE(f.server_rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 77u);
  EXPECT_EQ(0, std::memcmp(rbuf.data(), msg.data(), msg.size()));
}

// --- RPCoIB server on the SRQ -----------------------------------------------

constexpr Address kAddr{1, 9800};
const rpc::MethodKey kEcho{"test.SrqProtocol", "echo"};

void register_echo(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
}

/// RPCoIB server plus `n` independent clients spread over the testbed's
/// non-server hosts (each with its own pool and connection).
struct ServerFixture {
  ServerFixture(Scheduler& s, int n, oib::RdmaServerConfig scfg = {},
                oib::RdmaClientConfig ccfg = {})
      : tb(s, Testbed::cluster_b()),
        stack(tb.fabric()),
        server(tb.host(1), tb.sockets(), stack, kAddr, scfg) {
    register_echo(server);
    server.start();
    static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};
    for (int i = 0; i < n; ++i) {
      clients.push_back(std::make_unique<oib::RdmaRpcClient>(
          tb.host(kClientHosts[i % 8]), tb.sockets(), stack, ccfg));
    }
  }
  ~ServerFixture() {
    for (auto& c : clients) c->close_connections();
    server.stop();
  }
  Testbed tb;
  verbs::VerbsStack stack;
  oib::RdmaRpcServer server;
  std::vector<std::unique_ptr<oib::RdmaRpcClient>> clients;
};

Task call_echo(rpc::RpcClient& client, std::size_t n, bool& ok) {
  Bytes payload = pattern(n, 5);
  rpc::BytesWritable req(payload);
  rpc::BytesWritable resp;
  co_await client.call(kAddr, kEcho, req, &resp);
  ok = (resp.value == payload);
}

/// One 64-byte echo per client; returns the server's receive-ring peak.
std::uint64_t ring_peak_with(int nclients, std::size_t srq_depth) {
  Scheduler s;
  oib::RdmaServerConfig scfg;
  scfg.pool.srq_depth = srq_depth;
  ServerFixture f(s, nclients, scfg);
  std::vector<char> oks(static_cast<std::size_t>(nclients), 0);
  for (int i = 0; i < nclients; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.clients[static_cast<std::size_t>(i)], 64, *ok));
  }
  s.run_until(sim::seconds(30));
  for (int i = 0; i < nclients; ++i) {
    EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << "client " << i;
  }
  const std::uint64_t peak = f.server.stats().recv_ring_bytes_peak;
  for (auto& c : f.clients) c->close_connections();
  f.server.stop();
  s.drain_tasks();
  return peak;
}

// The tentpole property: with the SRQ the server's posted receive memory is
// a function of srq_depth, not of how many connections accept() creates.
// The legacy per-QP rings grow linearly in connection count.
TEST(SrqServer, RegisteredRecvRingFlatInConnectionCount) {
  const std::uint64_t srq2 = ring_peak_with(2, 64);
  const std::uint64_t srq8 = ring_peak_with(8, 64);
  EXPECT_GT(srq2, 0u);
  EXPECT_EQ(srq8, srq2);

  const std::uint64_t perqp2 = ring_peak_with(2, 0);
  const std::uint64_t perqp8 = ring_peak_with(8, 0);
  EXPECT_GE(perqp8, perqp2 * 3);  // ~4x, allowing accept-timing slack
}

TEST(SrqServer, TinyRingBackpressuresWithRnrAndRefillsButCompletesAllCalls) {
  Scheduler s;
  oib::RdmaServerConfig scfg;
  scfg.pool.srq_depth = 2;
  scfg.pool.srq_low_watermark = 1;
  ServerFixture f(s, 6, scfg);
  // Warm phase: bootstrap every connection (staggered by the serial accept
  // handshakes) so the burst below is pure same-tick eager traffic.
  std::vector<char> warm(6, 0);
  for (int i = 0; i < 6; ++i) {
    bool* ok = reinterpret_cast<bool*>(&warm[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.clients[static_cast<std::size_t>(i)], 64, *ok));
  }
  s.run_until(sim::seconds(5));
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(warm[static_cast<std::size_t>(i)]) << i;

  // Burst: the hosts are equidistant, so one call per warmed client lands
  // on the server in the same tick — more arrivals than the 2-deep ring.
  constexpr int kCalls = 12;
  std::vector<char> oks(kCalls, 0);
  for (int i = 0; i < kCalls; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.clients[static_cast<std::size_t>(i) % 6], 64, *ok));
  }
  s.run_until(sim::seconds(30));
  for (int i = 0; i < kCalls; ++i) EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << i;

  const rpc::RpcStats& ss = f.server.stats();
  // Some arrivals must have parked (RNR backpressure), the watermark
  // refill must have run, and every call still completed. The ring-bytes
  // peak counts buffers from post to completion processing, so an RNR
  // drain burst bounds it by in-flight calls — not by connection count.
  EXPECT_GT(ss.srq_rnr_stalls, 0u);
  EXPECT_GE(ss.srq_refills, 1u);
  EXPECT_GT(ss.srq_posted, 0u);
  EXPECT_LE(ss.recv_ring_bytes_peak,
            static_cast<std::uint64_t>(kCalls + 2) * oib::WireDefaults::kRecvBufSize);
}

Task two_calls_with_idle_gap(Scheduler& s, rpc::RpcClient& client, bool& ok1, bool& ok2) {
  co_await [](rpc::RpcClient& c, bool& ok) -> Co<void> {
    Bytes payload = pattern(64, 5);
    rpc::BytesWritable req(payload);
    rpc::BytesWritable resp;
    co_await c.call(kAddr, kEcho, req, &resp);
    ok = (resp.value == payload);
  }(client, ok1);
  co_await sim::delay(s, sim::seconds(3));  // idle past the eviction horizon
  co_await [](rpc::RpcClient& c, bool& ok) -> Co<void> {
    Bytes payload = pattern(64, 6);
    rpc::BytesWritable req(payload);
    rpc::BytesWritable resp;
    co_await c.call(kAddr, kEcho, req, &resp);
    ok = (resp.value == payload);
  }(client, ok2);
}

TEST(SrqServer, IdleEvictionIsTransparentToTheClient) {
  Scheduler s;
  oib::RdmaServerConfig scfg;
  scfg.srq_idle_evict = sim::seconds(1);
  ServerFixture f(s, 1, scfg);
  bool ok1 = false, ok2 = false;
  s.spawn(two_calls_with_idle_gap(s, *f.clients[0], ok1, ok2));
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);  // re-bootstrapped transparently after the eviction
  EXPECT_GE(f.server.stats().srq_evictions, 1u);
  EXPECT_EQ(f.clients[0]->stats().connections_opened, 2u);
}

TEST(SrqServer, LegacyPerQpRingModeStillServes) {
  Scheduler s;
  oib::RdmaServerConfig scfg;
  scfg.pool.srq_depth = 0;  // legacy mode
  ServerFixture f(s, 1, scfg);
  bool ok = false;
  s.spawn(call_echo(*f.clients[0], 512, ok));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.server.stats().srq_posted, 0u);
  EXPECT_EQ(f.server.stats().srq_refills, 0u);
  EXPECT_GT(f.server.stats().recv_ring_bytes_peak, 0u);  // per-QP ring
}

std::vector<std::uint64_t> srq_counter_run() {
  Scheduler s;
  oib::RdmaServerConfig scfg;
  scfg.pool.srq_depth = 2;
  scfg.pool.srq_low_watermark = 1;
  ServerFixture f(s, 4, scfg);
  std::vector<char> oks(8, 0);
  for (int i = 0; i < 8; ++i) {
    bool* ok = reinterpret_cast<bool*>(&oks[static_cast<std::size_t>(i)]);
    s.spawn(call_echo(*f.clients[static_cast<std::size_t>(i) % 4], 64, *ok));
  }
  s.run_until(sim::seconds(30));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(oks[static_cast<std::size_t>(i)]) << i;
  const rpc::RpcStats& ss = f.server.stats();
  return {ss.srq_posted, ss.srq_refills, ss.srq_rnr_stalls, ss.recv_ring_bytes_peak,
          ss.calls_handled};
}

TEST(SrqServer, SrqCountersAreSeedDeterministic) {
  EXPECT_EQ(srq_counter_run(), srq_counter_run());
}

}  // namespace
}  // namespace rpcoib
