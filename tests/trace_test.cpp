// Tracing subsystem tests: deterministic export (same seed => byte-identical
// chrome://tracing JSON), trace-context propagation across nested RPCs on
// both transports, critical-path attribution closure, and the bounded
// per-method size-sequence satellite.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "net/testbed.hpp"
#include "rpc/stats.hpp"
#include "rpcoib/engine.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/trace.hpp"
#include "workloads/hadoop_jobs.hpp"
#include "workloads/pingpong.hpp"

namespace rpcoib::trace {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

std::string export_json(const TraceCollector& col) {
  std::ostringstream os;
  write_chrome_trace(os, col);
  return os.str();
}

const Span* find_span(const TraceCollector& col, const std::string& name) {
  for (const Span& s : col.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Determinism: the same seed must produce a byte-identical exported trace.

TEST(TraceDeterminism, PingPongExportIsByteIdentical) {
  std::string runs[2];
  for (std::string& out : runs) {
    TraceCollector col;
    col.set_enabled(true);
    workloads::run_latency(RpcMode::kRpcoIB, {1, 256, 4096}, 2, 8, 1, &col);
    out = export_json(col);
  }
  ASSERT_FALSE(runs[0].empty());
  EXPECT_NE(runs[0].find("rpc:pingpong"), std::string::npos);
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(TraceDeterminism, MiniSortExportIsByteIdentical) {
  std::string runs[2];
  for (std::string& out : runs) {
    TraceCollector col;
    col.set_enabled(true);
    workloads::run_randomwriter_sort(RpcMode::kRpcoIB, 2, 256ULL << 20, 7, &col);
    out = export_json(col);
  }
  ASSERT_FALSE(runs[0].empty());
  EXPECT_NE(runs[0].find("job:sort"), std::string::npos);
  EXPECT_NE(runs[0].find("task:map:"), std::string::npos);
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(TraceDeterminism, DisabledCollectorRecordsNothing) {
  TraceCollector col;
  col.set_enabled(false);
  workloads::run_latency(RpcMode::kSocketIPoIB, {64}, 1, 4, 1, &col);
  EXPECT_TRUE(col.spans().empty());
}

// ---------------------------------------------------------------------------
// Context propagation: a handler's downstream RPC must parent under the
// handler span, which parents under the inbound client span — one tree
// spanning three simulated hosts.

constexpr Address kFrontAddr{1, 9200};
constexpr Address kBackAddr{2, 9201};
const rpc::MethodKey kFwd{"test.ChainProtocol", "forward"};
const rpc::MethodKey kEcho{"test.ChainProtocol", "echo"};

struct ChainFixture {
  ChainFixture(Scheduler& s, RpcMode mode)
      : tb(s, Testbed::cluster_a(3)), engine(tb, EngineConfig{.mode = mode}) {
    col.set_enabled(true);
    tb.set_tracer(&col);
    back = engine.make_server(tb.host(2), kBackAddr);
    back->dispatcher().register_method(
        "test.ChainProtocol", "echo",
        [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
          rpc::BytesWritable p;
          p.read_fields(in);
          rpc::BytesWritable(std::move(p.value)).write(out);
          co_return;
        });
    back->start();
    front = engine.make_server(tb.host(1), kFrontAddr);
    down = engine.make_client(tb.host(1));
    front->dispatcher().register_method(
        "test.ChainProtocol", "forward",
        [this](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
          rpc::BytesWritable p;
          p.read_fields(in);
          rpc::BytesWritable req(p.value);
          rpc::BytesWritable resp;
          activate(active(tb.host(1).tracer()), in.trace_context);
          co_await down->call(kBackAddr, kEcho, req, &resp);
          rpc::BytesWritable(std::move(resp.value)).write(out);
        });
    front->start();
    client = engine.make_client(tb.host(0));
  }
  ~ChainFixture() {
    front->stop();
    back->stop();
  }
  TraceCollector col;
  Testbed tb;
  RpcEngine engine;
  std::unique_ptr<rpc::RpcServer> front;
  std::unique_ptr<rpc::RpcServer> back;
  std::unique_ptr<rpc::RpcClient> down;
  std::unique_ptr<rpc::RpcClient> client;
};

class TracePropagation : public ::testing::TestWithParam<RpcMode> {};

TEST_P(TracePropagation, NestedRpcFormsOneTree) {
  Scheduler s;
  ChainFixture f(s, GetParam());
  bool ok = false;
  s.spawn([](ChainFixture& fx, bool& done) -> Task {
    net::Bytes payload(128, net::Byte{0x5A});
    rpc::BytesWritable req(payload);
    rpc::BytesWritable resp;
    co_await fx.client->call(kFrontAddr, kFwd, req, &resp);
    done = resp.value == payload;
  }(f, ok));
  s.run_until(sim::seconds(10));
  ASSERT_TRUE(ok);

  const Span* rpc_fwd = find_span(f.col, "rpc:forward");
  const Span* handle_fwd = find_span(f.col, "handle:forward");
  const Span* rpc_echo = find_span(f.col, "rpc:echo");
  const Span* handle_echo = find_span(f.col, "handle:echo");
  const Span* recv_fwd = find_span(f.col, "recv:forward");
  const Span* queue = find_span(f.col, "queue");
  ASSERT_NE(rpc_fwd, nullptr);
  ASSERT_NE(handle_fwd, nullptr);
  ASSERT_NE(rpc_echo, nullptr);
  ASSERT_NE(handle_echo, nullptr);
  ASSERT_NE(recv_fwd, nullptr);
  ASSERT_NE(queue, nullptr);

  // One tree: outer call is the root; the chain nests under it.
  EXPECT_EQ(rpc_fwd->parent_id, 0u);
  EXPECT_EQ(handle_fwd->parent_id, rpc_fwd->id);
  EXPECT_EQ(rpc_echo->parent_id, handle_fwd->id);
  EXPECT_EQ(handle_echo->parent_id, rpc_echo->id);
  EXPECT_EQ(recv_fwd->parent_id, rpc_fwd->id);
  const std::uint64_t t = rpc_fwd->trace_id;
  for (const Span* sp : {handle_fwd, rpc_echo, handle_echo, recv_fwd, queue}) {
    EXPECT_EQ(sp->trace_id, t) << sp->name;
  }

  // Spans land on the hosts that did the work.
  EXPECT_EQ(rpc_fwd->host, 0);
  EXPECT_EQ(handle_fwd->host, 1);
  EXPECT_EQ(rpc_echo->host, 1);
  EXPECT_EQ(handle_echo->host, 2);

  // Nesting in time: each child runs inside its parent's window.
  EXPECT_GE(handle_fwd->start, rpc_fwd->start);
  EXPECT_LE(handle_fwd->end, rpc_fwd->end);
  EXPECT_GE(rpc_echo->start, handle_fwd->start);
  EXPECT_LE(rpc_echo->end, handle_fwd->end);
  EXPECT_EQ(f.col.open_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, TracePropagation,
                         ::testing::Values(RpcMode::kSocketIPoIB, RpcMode::kRpcoIB));

// ---------------------------------------------------------------------------
// Critical path: the per-category sums must cover the root span exactly.

TEST(TraceCriticalPath, AttributionSumsToRootDuration) {
  TraceCollector col;
  col.set_enabled(true);
  workloads::run_randomwriter_sort(RpcMode::kSocketIPoIB, 2, 256ULL << 20, 7, &col);
  ASSERT_NE(col.longest_root(), nullptr);
  const Attribution a = attribute_time(col);
  ASSERT_NE(a.root, nullptr);
  EXPECT_EQ(a.root->name, "job:sort");
  EXPECT_GT(a.total(), 0u);
  EXPECT_EQ(a.attributed(), a.total());
  // The sweep found real work, not just one flat bucket.
  EXPECT_GT(a.by_category[static_cast<int>(Category::kDisk)], 0u);
  EXPECT_GT(a.by_category[static_cast<int>(Category::kWire)], 0u);
  EXPECT_GT(a.by_category[static_cast<int>(Category::kCompute)], 0u);
}

TEST(TraceCriticalPath, SingleRpcAttributionSumsExactly) {
  TraceCollector col;
  col.set_enabled(true);
  workloads::run_latency(RpcMode::kSocketIPoIB, {1024}, 1, 4, 1, &col);
  const Attribution a = attribute_time(col);
  ASSERT_NE(a.root, nullptr);
  EXPECT_EQ(a.attributed(), a.total());
  EXPECT_GT(a.by_category[static_cast<int>(Category::kWire)], 0u);
}

// ---------------------------------------------------------------------------
// Satellite: MethodProfile::size_sequence stays bounded by sequence_cap.

TEST(RpcStatsCap, SizeSequenceIsBounded) {
  rpc::RpcStats st;
  st.record_sequences = true;
  st.sequence_cap = 4;
  rpc::MethodProfile p;
  for (std::uint32_t i = 0; i < 10; ++i) st.record_size(p, 100 + i);
  EXPECT_EQ(p.size_sequence.size(), 4u);
  EXPECT_EQ(p.sequence_dropped, 6u);
  // The first N survive (the sequence keeps its prefix, not a sample).
  EXPECT_EQ(p.size_sequence.front(), 100u);
  EXPECT_EQ(p.size_sequence.back(), 103u);
}

TEST(RpcStatsCap, ZeroCapMeansUnbounded) {
  rpc::RpcStats st;
  st.record_sequences = true;
  st.sequence_cap = 0;
  rpc::MethodProfile p;
  for (std::uint32_t i = 0; i < 10; ++i) st.record_size(p, i);
  EXPECT_EQ(p.size_sequence.size(), 10u);
  EXPECT_EQ(p.sequence_dropped, 0u);
}

}  // namespace
}  // namespace rpcoib::trace
