// End-to-end tests of the RPCoIB path: echo over eager and rendezvous,
// concurrency, exceptions, latency vs the socket baseline, history warmup,
// engine-mode switching.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/testbed.hpp"
#include "rpc/socket_client.hpp"
#include "rpc/socket_server.hpp"
#include "rpcoib/engine.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"

namespace rpcoib::oib {
namespace {

using net::Address;
using net::Testbed;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9010};
const rpc::MethodKey kEcho{"test.EchoProtocol", "echo"};
const rpc::MethodKey kFail{"test.EchoProtocol", "fail"};

void register_echo(rpc::RpcServer& server) {
  server.dispatcher().register_method(
      "test.EchoProtocol", "echo", [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
  server.dispatcher().register_method(
      "test.EchoProtocol", "fail", [](rpc::DataInput&, rpc::DataOutput&) -> Co<void> {
        throw std::runtime_error("rdma failure path");
        co_return;
      });
}

struct Fixture {
  explicit Fixture(Scheduler& s, RdmaServerConfig server_cfg = {},
                   RdmaClientConfig client_cfg = {})
      : tb(s, Testbed::cluster_b()),
        stack(tb.fabric()),
        server(tb.host(1), tb.sockets(), stack, kAddr, server_cfg),
        client(tb.host(0), tb.sockets(), stack, client_cfg) {
    register_echo(server);
    server.start();
  }
  ~Fixture() {
    client.close_connections();
    server.stop();
  }
  Testbed tb;
  verbs::VerbsStack stack;
  RdmaRpcServer server;
  RdmaRpcClient client;
};

Task call_echo(rpc::RpcClient& client, std::size_t n, bool& ok, double* rtt_us = nullptr) {
  net::Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<net::Byte>(i * 13 + 1);
  rpc::BytesWritable req(payload);
  rpc::BytesWritable resp;
  const sim::Time t0 = client.host().sched().now();
  co_await client.call(kAddr, kEcho, req, &resp);
  if (rtt_us != nullptr) *rtt_us = sim::to_us(client.host().sched().now() - t0);
  ok = (resp.value == payload);
}

TEST(RpcoIB, EagerEchoRoundTrips) {
  Scheduler s;
  Fixture f(s);
  bool ok = false;
  s.spawn(call_echo(f.client, 512, ok));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(ok);
}

class RpcoIBSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RpcoIBSizes, EchoRoundTripsEagerAndRendezvous) {
  Scheduler s;
  Fixture f(s);
  bool ok = false;
  s.spawn(call_echo(f.client, GetParam(), ok));
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(ok) << GetParam();
}

// 4096+overhead crosses the default eager threshold: both paths covered.
INSTANTIATE_TEST_SUITE_P(Sweep, RpcoIBSizes,
                         ::testing::Values(1, 64, 1024, 4000, 4096, 8192, 65536, 1u << 20,
                                           2u << 20));

// Regression (threshold handshake): a client configured with a larger
// eager threshold than the server used to eager-SEND mid-size messages
// into pre-posted receive buffers the server sized from its own smaller
// knob — a verbs-level overrun. Post-fix both ends advertise their
// thresholds at bootstrap and use min(local, peer), so the 4 KB call
// below goes rendezvous and completes; both sides count the mismatch.
TEST(RpcoIB, MismatchedEagerThresholdsNegotiateToMin) {
  Scheduler s;
  RdmaServerConfig scfg;
  scfg.eager_threshold = 2 * 1024;
  RdmaClientConfig ccfg;
  ccfg.eager_threshold = 16 * 1024;
  Fixture f(s, scfg, ccfg);
  bool ok = false;
  // Above the server's knob, below the client's: exactly the frame the
  // unfixed client would have stuffed into a 2 KB-sized receive slot.
  s.spawn(call_echo(f.client, 4096, ok));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.client.stats().threshold_mismatches, 1u);
  EXPECT_EQ(f.server.stats().threshold_mismatches, 1u);
  // No socket-mode escape hatch was needed: the RDMA path itself carried
  // the call (rendezvous under the negotiated threshold).
  EXPECT_EQ(f.client.stats().socket_fallbacks, 0u);
  EXPECT_EQ(f.client.fallback_address_count(), 0u);
  f.client.close_connections();
  f.server.stop();
  s.drain_tasks();
}

TEST(RpcoIB, ManyConcurrentCalls) {
  Scheduler s;
  Fixture f(s);
  constexpr int kN = 24;
  std::vector<bool> oks(kN, false);
  std::vector<char> dummy(kN);
  for (int i = 0; i < kN; ++i) {
    bool* ok = reinterpret_cast<bool*>(&dummy[static_cast<std::size_t>(i)]);
    *ok = false;
    s.spawn(call_echo(f.client, 256 + static_cast<std::size_t>(i) * 64, *ok));
  }
  s.run_until(sim::seconds(30));
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(dummy[static_cast<std::size_t>(i)]) << i;
}

Task call_fail_t(rpc::RpcClient& client, bool& remote_ex) {
  rpc::NullWritable arg;
  try {
    co_await client.call(kAddr, kFail, arg, nullptr);
  } catch (const rpc::RemoteException&) {
    remote_ex = true;
  }
}

TEST(RpcoIB, RemoteExceptionPropagates) {
  Scheduler s;
  Fixture f(s);
  bool remote_ex = false;
  s.spawn(call_fail_t(f.client, remote_ex));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(remote_ex);
}

TEST(RpcoIB, HistoryWarmupEliminatesRegets) {
  Scheduler s;
  Fixture f(s);
  bool ok = false;
  // First call alone (cold history)...
  s.spawn(call_echo(f.client, 1500, ok));
  s.run_until(sim::seconds(5));
  // ...then four more with the learned size.
  for (int i = 0; i < 4; ++i) s.spawn(call_echo(f.client, 1500, ok));
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(ok);
  const rpc::MethodProfile& prof = f.client.stats().methods.at(kEcho);
  ASSERT_EQ(prof.mem_adjustments.count(), 5u);
  // Only the first call may have re-gets (the paper: "only the first call
  // may need the buffer adjustment").
  EXPECT_GT(prof.mem_adjustments.max(), 0.0);
  EXPECT_EQ(prof.mem_adjustments.min(), 0.0);
  EXPECT_LE(prof.mem_adjustments.sum(), prof.mem_adjustments.max());
}

TEST(RpcoIB, LatencyBeatsSocketBaselines) {
  // The headline Fig. 5(a) property: RPCoIB < IPoIB and 10GigE at equal
  // payload, warm history.
  auto rpcoib_rtt = [](std::size_t n) {
    Scheduler s;
    Fixture f(s);
    bool ok = false;
    double warm = 0;
    s.spawn(call_echo(f.client, n, ok));
    s.run_until(sim::seconds(5));
    s.spawn(call_echo(f.client, n, ok, &warm));
    s.run_until(sim::seconds(10));
    EXPECT_TRUE(ok);
    return warm;
  };
  auto socket_rtt = [](std::size_t n, net::Transport t) {
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::SocketRpcServer server(tb.host(1), tb.sockets(), kAddr, 8);
    register_echo(server);
    server.start();
    rpc::SocketRpcClient client(tb.host(0), tb.sockets(), t);
    bool ok = false;
    double warm = 0;
    s.spawn(call_echo(client, n, ok));
    s.run_until(sim::seconds(5));
    s.spawn(call_echo(client, n, ok, &warm));
    s.run_until(sim::seconds(10));
    EXPECT_TRUE(ok);
    client.close_connections();
    server.stop();
    return warm;
  };
  for (std::size_t n : {std::size_t{1}, std::size_t{1024}, std::size_t{4096}}) {
    const double rdma = rpcoib_rtt(n);
    const double ipoib = socket_rtt(n, net::Transport::kIPoIB);
    const double tengige = socket_rtt(n, net::Transport::kTenGigE);
    EXPECT_LT(rdma, ipoib) << n;
    EXPECT_LT(rdma, tengige) << n;
  }
}

TEST(RpcEngine, ModesProduceWorkingPairs) {
  for (RpcMode mode : {RpcMode::kSocket1GigE, RpcMode::kSocket10GigE,
                       RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    RpcEngine engine(tb, EngineConfig{.mode = mode});
    std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(1), kAddr);
    register_echo(*server);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));
    bool ok = false;
    s.spawn(call_echo(*client, 777, ok));
    s.run_until(sim::seconds(10));
    EXPECT_TRUE(ok) << rpc_mode_name(mode);
    server->stop();
  }
}

TEST(RpcoIB, ThresholdSweepStillCorrect) {
  for (std::size_t threshold : {std::size_t{256}, std::size_t{1024}, std::size_t{16384}}) {
    Scheduler s;
    RdmaServerConfig sc;
    sc.eager_threshold = threshold;
    RdmaClientConfig cc;
    cc.eager_threshold = threshold;
    Fixture f(s, sc, cc);
    bool ok1 = false, ok2 = false;
    s.spawn(call_echo(f.client, threshold / 2, ok1));
    s.spawn(call_echo(f.client, threshold * 4, ok2));
    s.run_until(sim::seconds(30));
    EXPECT_TRUE(ok1) << threshold;
    EXPECT_TRUE(ok2) << threshold;
  }
}

}  // namespace
}  // namespace rpcoib::oib
