// Stream subsystem tests: pipelined chunk transfer integrity, the fallback
// matrix (threshold, capped pools, grant refusal), edge geometries (payload
// an exact multiple of chunk_size, sub-chunk payload, ring_depth=1),
// per-chunk deadline expiry, and pool-balance invariants after teardown.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/testbed.hpp"
#include "rpcoib/stream/stream.hpp"

namespace rpcoib::oib::stream {
namespace {

using net::Testbed;
using sim::Scheduler;
using sim::Task;

StreamConfig stream_cfg(std::size_t chunk = 64 * 1024, std::size_t depth = 4) {
  StreamConfig c;
  c.enabled = true;
  c.chunk_size = chunk;
  c.ring_depth = depth;
  c.min_stream_bytes = 128 * 1024;
  return c;
}

struct Fixture {
  explicit Fixture(Scheduler& s, StreamConfig cfg = stream_cfg(), PoolConfig apool = {},
                   PoolConfig bpool = {})
      : tb(s, Testbed::cluster_a(2)),
        stack(tb.fabric()),
        a(tb.host(0), tb.sockets(), stack, cfg, apool),
        b(tb.host(1), tb.sockets(), stack, cfg, bpool) {}

  // Tests stop hubs explicitly where teardown matters; this drain only
  // reclaims still-suspended daemon frames (conn loops, pool init) so the
  // leak checker stays quiet.
  ~Fixture() { tb.sched().drain_tasks(); }

  Testbed tb;
  verbs::VerbsStack stack;
  StreamHub a;  // opener side
  StreamHub b;  // listener side
};

constexpr net::Address kDst{1, kHdfsStreamPort};

struct Received {
  net::Bytes meta;
  std::vector<net::Bytes> chunks;
  bool finished = false;
  std::string error;
};

// Consume a stream fully, copying every chunk out. `hold` delays each
// release; from chunk index `stall_at` on, the consumer stops releasing for
// `stall_for` before continuing (provoking writer-side credit stalls or
// deadline expiry).
Task consume(Scheduler& s, StreamReaderPtr r, net::Bytes meta, Received* out,
             sim::Dur hold, std::uint64_t stall_at, sim::Dur stall_for) {
  out->meta = std::move(meta);
  bool ok = false;  // co_await is not allowed inside a handler
  try {
    const std::uint64_t n = r->num_chunks();
    for (std::uint64_t i = 0; i < n; ++i) {
      if (i == stall_at) co_await sim::delay(s, stall_for);
      Chunk c = co_await r->next_chunk();
      out->chunks.emplace_back(c.data.begin(), c.data.end());
      if (hold > 0) co_await sim::delay(s, hold);
      co_await r->release_chunk(c.seq);
    }
    co_await r->finish(0);
    ok = true;
  } catch (const StreamAbortedError& e) {
    out->error = e.what();
  }
  if (ok) {
    out->finished = true;
  } else {
    co_await r->abort(out->error);
  }
}

StreamHub::OpenHandler consumer(Scheduler& s, Received* out, sim::Dur hold = 0,
                                std::uint64_t stall_at = ~0ULL, sim::Dur stall_for = 0) {
  return [&s, out, hold, stall_at, stall_for](StreamReaderPtr r, net::Bytes meta) {
    return consume(s, std::move(r), std::move(meta), out, hold, stall_at, stall_for);
  };
}

struct WriteResult {
  int status = -1;  // -2 = open fell back, -3 = aborted, else receiver status
  std::string error;
};

sim::Co<void> drive_write(StreamHub& hub, net::Address dst, net::Bytes meta,
                          std::uint64_t nbytes, WriteResult* out) {
  StreamWriterPtr w = co_await hub.open(dst, std::move(meta), nbytes);
  if (w == nullptr) {
    out->status = -2;
    co_return;
  }
  try {
    co_await w->write_all();
    out->status = co_await w->close();
  } catch (const StreamAbortedError& e) {
    out->status = -3;
    out->error = e.what();
  } catch (const std::exception& e) {
    out->status = -4;
    out->error = std::string("unexpected: ") + e.what();
  }
}

Task write_task(StreamHub& hub, net::Address dst, net::Bytes meta, std::uint64_t nbytes,
                WriteResult* out) {
  co_await drive_write(hub, dst, std::move(meta), nbytes, out);
}

// write_all's integrity pattern: byte j of chunk k is (k * 131 + j) & 0xff.
bool pattern_ok(const std::vector<net::Bytes>& chunks, std::uint64_t nbytes,
                std::size_t chunk_size) {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    if (chunks[k].size() > chunk_size) return false;
    for (std::size_t j = 0; j < chunks[k].size(); ++j) {
      if (chunks[k][j] != static_cast<net::Byte>((k * 131 + j) & 0xff)) return false;
    }
    total += chunks[k].size();
  }
  return total == nbytes;
}

void expect_balanced(StreamHub& hub) {
  const PoolStats& ps = hub.pool().stats();
  EXPECT_EQ(ps.acquires, ps.releases);
}

TEST(Stream, ExactMultipleRoundTrip) {
  Scheduler s;
  Fixture f(s);
  Received rx;
  f.b.listen(kDst, consumer(s, &rx));
  WriteResult wr;
  const std::uint64_t nbytes = 512 * 1024;  // exactly 8 x 64K chunks
  s.spawn(write_task(f.a, kDst, {net::Byte{0x42}}, nbytes, &wr));
  s.run_until(sim::seconds(30));

  EXPECT_EQ(wr.status, 0) << wr.error;
  EXPECT_TRUE(rx.finished) << rx.error;
  ASSERT_EQ(rx.chunks.size(), 8u);
  for (const net::Bytes& c : rx.chunks) EXPECT_EQ(c.size(), 64u * 1024);
  EXPECT_TRUE(pattern_ok(rx.chunks, nbytes, 64 * 1024));
  ASSERT_EQ(rx.meta.size(), 1u);
  EXPECT_EQ(rx.meta[0], net::Byte{0x42});

  EXPECT_EQ(f.a.stats().streams_opened, 1u);
  EXPECT_EQ(f.a.stats().stream_chunks, 8u);
  EXPECT_EQ(f.a.stats().stream_bytes, nbytes);
  EXPECT_EQ(f.b.stats().streams_opened, 1u);
  EXPECT_EQ(f.a.stats().stream_aborts, 0u);

  f.a.stop();
  f.b.stop();
  s.run_until(sim::seconds(31));
  expect_balanced(f.a);
  expect_balanced(f.b);
}

TEST(Stream, PartialTailChunk) {
  Scheduler s;
  Fixture f(s);
  Received rx;
  f.b.listen(kDst, consumer(s, &rx));
  WriteResult wr;
  const std::uint64_t nbytes = 2 * 64 * 1024 + 2048;  // 64K, 64K, 2K
  s.spawn(write_task(f.a, kDst, {}, nbytes, &wr));
  s.run_until(sim::seconds(30));

  EXPECT_EQ(wr.status, 0) << wr.error;
  EXPECT_TRUE(rx.finished) << rx.error;
  ASSERT_EQ(rx.chunks.size(), 3u);
  EXPECT_EQ(rx.chunks.back().size(), 2048u);
  EXPECT_TRUE(pattern_ok(rx.chunks, nbytes, 64 * 1024));
}

TEST(Stream, SubChunkPayload) {
  Scheduler s;
  StreamConfig cfg = stream_cfg();
  cfg.min_stream_bytes = 16 * 1024;
  Fixture f(s, cfg);
  Received rx;
  f.b.listen(kDst, consumer(s, &rx));
  WriteResult wr;
  const std::uint64_t nbytes = 20 * 1024;  // below one chunk
  ASSERT_TRUE(f.a.should_stream(nbytes));
  s.spawn(write_task(f.a, kDst, {}, nbytes, &wr));
  s.run_until(sim::seconds(30));

  EXPECT_EQ(wr.status, 0) << wr.error;
  EXPECT_TRUE(rx.finished) << rx.error;
  ASSERT_EQ(rx.chunks.size(), 1u);
  EXPECT_EQ(rx.chunks.front().size(), nbytes);
  EXPECT_TRUE(pattern_ok(rx.chunks, nbytes, 64 * 1024));
}

TEST(Stream, ShouldStreamThresholds) {
  Scheduler s;
  Fixture f(s);
  EXPECT_FALSE(f.a.should_stream(0));
  EXPECT_FALSE(f.a.should_stream(128 * 1024 - 1));  // below min_stream_bytes
  EXPECT_TRUE(f.a.should_stream(128 * 1024));
  // 16-bit chunk-sequence space: > 65535 chunks cannot stream.
  EXPECT_FALSE(f.a.should_stream(static_cast<std::uint64_t>(64 * 1024) * 65536 + 1));

  StreamConfig off;  // enabled = false
  StreamHub c(f.tb.host(0), f.tb.sockets(), f.stack, off, PoolConfig{});
  EXPECT_FALSE(c.should_stream(10u << 20));
}

TEST(Stream, RingDepthOne) {
  Scheduler s;
  Fixture f(s, stream_cfg(64 * 1024, 1));
  Received rx;
  // Hold each chunk briefly so its credit always lags the writer's next
  // take: serialization alone can otherwise cover the credit round-trip.
  f.b.listen(kDst, consumer(s, &rx, sim::millis(1)));
  WriteResult wr;
  const std::uint64_t nbytes = 256 * 1024;
  s.spawn(write_task(f.a, kDst, {}, nbytes, &wr));
  s.run_until(sim::seconds(30));

  EXPECT_EQ(wr.status, 0) << wr.error;
  EXPECT_TRUE(rx.finished) << rx.error;
  ASSERT_EQ(rx.chunks.size(), 4u);
  EXPECT_TRUE(pattern_ok(rx.chunks, nbytes, 64 * 1024));
  // Depth 1 serializes every chunk behind the previous credit.
  EXPECT_GT(f.a.stats().stream_credit_stalls, 0u);
}

TEST(Stream, WriterDeadlineExpiresOnStalledReader) {
  Scheduler s;
  StreamConfig cfg = stream_cfg(64 * 1024, 2);
  cfg.chunk_deadline = sim::millis(50);
  Fixture f(s, cfg);
  Received rx;
  // Reader stalls 2 s before chunk 1 — far past the 50 ms chunk deadline.
  f.b.listen(kDst, consumer(s, &rx, 0, 1, sim::seconds(2)));
  WriteResult wr;
  s.spawn(write_task(f.a, kDst, {}, 512 * 1024, &wr));
  s.run_until(sim::seconds(30));

  EXPECT_EQ(wr.status, -3);
  EXPECT_FALSE(rx.finished);
  EXPECT_GE(f.a.stats().stream_deadline_expiries, 1u);
  EXPECT_GE(f.a.stats().stream_aborts, 1u);

  f.a.stop();
  f.b.stop();
  s.run_until(sim::seconds(31));
  expect_balanced(f.a);
  expect_balanced(f.b);
}

TEST(Stream, ReaderDeadlineExpiresOnSilentWriter) {
  Scheduler s;
  StreamConfig cfg = stream_cfg(64 * 1024, 2);
  cfg.chunk_deadline = sim::millis(50);
  Fixture f(s, cfg);
  Received rx;
  f.b.listen(kDst, consumer(s, &rx));
  // Open a stream and never write: the reader's chunk deadline fires and
  // aborts back into the writer.
  bool opened = false;
  bool writer_failed = false;
  s.spawn([](Fixture& f, bool& opened, bool& writer_failed) -> Task {
    StreamWriterPtr w = co_await f.a.open(kDst, {}, 512 * 1024);
    opened = w != nullptr;
    if (!opened) co_return;
    co_await sim::delay(f.tb.sched(), sim::seconds(1));
    bool aborted = false;  // co_await is not allowed inside a handler
    try {
      co_await w->write_chunk(net::Bytes(1024));
    } catch (const StreamAbortedError&) {
      aborted = true;
    }
    writer_failed = aborted;
    if (aborted) {
      const std::string why = "peer gone";
      co_await w->abort(why);
    }
  }(f, opened, writer_failed));
  s.run_until(sim::seconds(30));

  EXPECT_TRUE(opened);
  EXPECT_TRUE(writer_failed);
  EXPECT_FALSE(rx.finished);
  EXPECT_GE(f.b.stats().stream_deadline_expiries, 1u);
  EXPECT_GE(f.b.stats().stream_aborts, 1u);

  f.a.stop();
  f.b.stop();
  s.run_until(sim::seconds(31));
  expect_balanced(f.a);
  expect_balanced(f.b);
}

TEST(Stream, CappedReceiverGrantsPartialRingThenRefuses) {
  Scheduler s;
  StreamConfig cfg = stream_cfg(256 * 1024, 4);  // above prealloc_max_class
  PoolConfig capped;
  // The cap is a lifetime demand-allocation budget. Connection bootstrap
  // takes 8 (16 ctrl recvs minus 8 preallocated 2 KB buffers), leaving
  // room for exactly 2 of the 4 requested 256 KB ring slots.
  capped.demand_alloc_cap = 10;
  Fixture f(s, cfg, PoolConfig{}, capped);
  Received rx1;
  // First stream holds its (partial) ring for a while.
  f.b.listen(kDst, consumer(s, &rx1, sim::millis(200)));
  WriteResult w1, w2;
  const std::uint64_t nbytes = 1u << 20;
  s.spawn(write_task(f.a, kDst, {}, nbytes, &w1));
  // Second stream arrives while the first holds both demand-capped slots:
  // its grant is refused and the opener falls back.
  s.spawn([](Scheduler& s, Fixture& f, std::uint64_t nbytes, WriteResult* out) -> Task {
    co_await sim::delay(s, sim::millis(10));
    co_await drive_write(f.a, kDst, {}, nbytes, out);
  }(s, f, nbytes, &w2));
  s.run_until(sim::seconds(120));

  EXPECT_EQ(w1.status, 0) << w1.error;
  EXPECT_TRUE(rx1.finished) << rx1.error;
  EXPECT_EQ(w2.status, -2);  // open returned null: legacy-path fallback
  EXPECT_GT(f.b.stats().stream_pool_denied, 0u);
  EXPECT_GE(f.a.stats().stream_fallbacks, 1u);

  f.a.stop();
  f.b.stop();
  s.run_until(sim::seconds(121));
  expect_balanced(f.a);
  expect_balanced(f.b);
}

TEST(Stream, CappedSenderFallsBackBeforeOpening) {
  Scheduler s;
  StreamConfig cfg = stream_cfg(256 * 1024, 4);
  PoolConfig capped;
  // 8 ctrl-recv demand allocations + 2 of the 4 staging slots (see the
  // receiver-side test above for the budget arithmetic).
  capped.demand_alloc_cap = 10;
  Fixture f(s, cfg, capped, PoolConfig{});
  Received rx1, rx2;
  f.b.listen(kDst, consumer(s, &rx1, sim::millis(200)));
  WriteResult w1, w2;
  const std::uint64_t nbytes = 1u << 20;
  s.spawn(write_task(f.a, kDst, {}, nbytes, &w1));
  s.spawn([](Scheduler& s, Fixture& f, std::uint64_t nbytes, WriteResult* out) -> Task {
    co_await sim::delay(s, sim::millis(10));
    co_await drive_write(f.a, kDst, {}, nbytes, out);
  }(s, f, nbytes, &w2));
  s.run_until(sim::seconds(120));

  // First stream runs (staging capped to 2 slots); the second finds the
  // sender's own pool dry and falls back without touching the wire.
  EXPECT_EQ(w1.status, 0) << w1.error;
  EXPECT_EQ(w2.status, -2);
  EXPECT_GT(f.a.stats().stream_pool_denied, 0u);
  EXPECT_GE(f.a.stats().stream_fallbacks, 1u);

  f.a.stop();
  f.b.stop();
  s.run_until(sim::seconds(121));
  expect_balanced(f.a);
  expect_balanced(f.b);
}

Task serve_fetch(StreamHub& hub, StreamHub::ConnPtr conn, std::uint64_t token,
                 std::uint64_t nbytes) {
  StreamWriterPtr w = co_await hub.open_on(std::move(conn), token, nbytes);
  if (w == nullptr) co_return;
  bool aborted = false;  // co_await is not allowed inside a handler
  try {
    co_await w->write_all();
    co_await w->close();
  } catch (const StreamAbortedError&) {
    aborted = true;
  }
  if (aborted) {
    const std::string why = "fetch aborted";
    co_await w->abort(why);
  }
}

Task fetch_consume(StreamHub& hub, std::vector<net::Bytes>& chunks, bool& finished) {
  net::Bytes meta{net::Byte{7}};  // named: gcc rejects a braced temp under co_await
  StreamReaderPtr r = co_await hub.fetch(kDst, std::move(meta));
  if (r == nullptr) co_return;
  bool ok = false;  // co_await is not allowed inside a handler
  std::string err;
  try {
    const std::uint64_t n = r->num_chunks();
    for (std::uint64_t i = 0; i < n; ++i) {
      Chunk c = co_await r->next_chunk();
      chunks.emplace_back(c.data.begin(), c.data.end());
      co_await r->release_chunk(c.seq);
    }
    co_await r->finish(0);
    ok = true;
  } catch (const StreamAbortedError& e) {
    err = e.what();
  }
  if (!ok) co_await r->abort(err);
  finished = ok;
}

TEST(Stream, FetchRoleFlip) {
  Scheduler s;
  Fixture f(s);
  const std::uint64_t nbytes = 512 * 1024;
  // Server side: serve fetches by opening a stream back on the same
  // connection (the shuffle pattern).
  f.b.listen(
      kDst, [](StreamReaderPtr, net::Bytes) -> Task { co_return; },
      [&f, nbytes](StreamHub::ConnPtr conn, std::uint64_t token, net::Bytes) {
        return serve_fetch(f.b, std::move(conn), token, nbytes);
      });
  std::vector<net::Bytes> chunks;
  bool finished = false;
  s.spawn(fetch_consume(f.a, chunks, finished));
  s.run_until(sim::seconds(30));

  EXPECT_TRUE(finished);
  ASSERT_EQ(chunks.size(), 8u);
  EXPECT_TRUE(pattern_ok(chunks, nbytes, 64 * 1024));

  f.a.stop();
  f.b.stop();
  s.run_until(sim::seconds(31));
  expect_balanced(f.a);
  expect_balanced(f.b);
}

}  // namespace
}  // namespace rpcoib::oib::stream
