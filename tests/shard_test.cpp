// Sharded server receive/dispatch (server.shards): connection-to-shard
// affinity, per-shard admission/deadline/retry-cache behavior, response
// batching staying within a shard, work stealing, stop()-drain across
// every shard, and the idempotent cross-shard stats aggregation — on both
// transports.
//
// Seedable through RPCOIB_CHAOS_SEED (the chaos-suite convention); same
// seed => byte-identical runs, which the affinity test asserts directly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/testbed.hpp"
#include "rpc/overload.hpp"
#include "rpc/resilience.hpp"
#include "rpcoib/engine.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9600};
const rpc::MethodKey kEcho{"test.ShardProtocol", "echo"};
const rpc::MethodKey kSlow{"test.ShardProtocol", "slow"};
const rpc::MethodKey kBump{"test.ShardProtocol", "bump"};

// Client hosts distinct from the server's host 1 (cluster_b has 9 hosts).
constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RPCOIB_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// echo: IntWritable roundtrip. slow: sleep `slow_for`, return true.
/// bump: non-idempotent — increments *runs, sleeps 2 s, returns the count.
void register_suite(rpc::RpcServer& server, cluster::Host& host, int* runs = nullptr,
                    sim::Dur slow_for = sim::seconds(5)) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable v;
        v.read_fields(in);
        v.write(out);
        co_return;
      });
  server.dispatcher().register_method(
      kSlow.protocol, kSlow.method,
      [&host, slow_for](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
        co_await sim::delay(host.sched(), slow_for);
        rpc::BooleanWritable(true).write(out);
      });
  if (runs != nullptr) {
    server.dispatcher().register_method(
        kBump.protocol, kBump.method,
        [&host, runs](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
          ++*runs;
          co_await sim::delay(host.sched(), sim::seconds(2));
          rpc::IntWritable(*runs).write(out);
        });
  }
}

Task echo_burst(rpc::RpcClient& client, int n, int& completed) {
  for (int i = 0; i < n; ++i) {
    rpc::IntWritable param(i), resp;
    co_await client.call(kAddr, kEcho, param, &resp);
    if (resp.value == i) ++completed;
  }
}

Task echo_one(rpc::RpcClient& client, int v, int& matched) {
  rpc::IntWritable param(v), resp;
  co_await client.call(kAddr, kEcho, param, &resp);
  if (resp.value == v) ++matched;
}

Task slow_expect_error(rpc::RpcClient& client, int& outcome) {
  rpc::NullWritable arg;
  try {
    co_await client.call(kAddr, kSlow, arg, nullptr);
    outcome = 1;
  } catch (const rpc::RpcTimeoutError&) {
    outcome = 3;
  } catch (const rpc::RpcTransportError&) {
    outcome = 2;
  }
}

void close_client(rpc::RpcClient& c) {
  if (auto* r = dynamic_cast<oib::RdmaRpcClient*>(&c)) r->close_connections();
}

std::uint64_t sum_dispatched(const rpc::RpcStats& st) {
  std::uint64_t n = 0;
  for (const rpc::ShardCounters& sc : st.shards) n += sc.dispatched;
  return n;
}

// --- Connection-to-shard affinity -------------------------------------------

// Connections land on shards round-robin by dense connection id, the
// assignment is exactly balanced, every dispatched call is conserved
// across the shard counters, and the whole run (report included) is
// byte-identical per seed.
TEST(Shard, ConnectionAffinityIsBalancedAndSeedStable) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    auto run_once = [mode] {
      Scheduler s;
      net::TestbedConfig cfg = Testbed::cluster_b();
      cfg.seed = chaos_seed();
      Testbed tb(s, cfg);
      RpcEngine engine(tb, EngineConfig{.mode = mode, .server_shards = 4});
      auto server = engine.make_server(tb.host(1), kAddr);
      register_suite(*server, tb.host(1));
      server->start();

      std::vector<std::unique_ptr<rpc::RpcClient>> clients;
      int completed = 0;
      for (int i = 0; i < 8; ++i) {
        clients.push_back(engine.make_client(tb.host(kClientHosts[i % 8])));
        s.spawn(echo_burst(*clients.back(), 3, completed));
      }
      s.run_until(sim::seconds(60));
      EXPECT_EQ(completed, 8 * 3);

      const rpc::RpcStats& st = server->stats();
      EXPECT_EQ(st.shards.size(), 4u);
      std::uint64_t conns = 0;
      for (const rpc::ShardCounters& sc : st.shards) {
        // Exact round-robin: 8 connections over 4 shards = 2 each.
        EXPECT_EQ(sc.conns_assigned, 2u);
        conns += sc.conns_assigned;
      }
      EXPECT_EQ(conns, 8u);
      EXPECT_EQ(sum_dispatched(st), st.calls_handled);
      EXPECT_EQ(st.calls_handled, 24u);

      std::string report = rpc::resilience_report(clients.front()->stats(), nullptr,
                                                  &server->stats());
      report += "\nfinished at " + std::to_string(s.now());
      server->stop();
      s.drain_tasks();
      return report;
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_EQ(a, b);
  }
}

// --- Per-shard deadline expiry ----------------------------------------------

// With one handler per shard and one connection, the backlog (and its
// deadline expiries) is accounted on the connection's home shard alone;
// the aggregate matches the unsharded test's numbers exactly.
TEST(Shard, DeadlineExpiryLandsOnTheHomeShard) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);  // handler runs 5 s
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 4,
                                      .server_shards = 4,
                                      .retry = retry});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    std::vector<int> outcomes(4, 0);
    for (int& o : outcomes) s.spawn(slow_expect_error(*client, o));
    s.run_until(sim::seconds(60));

    for (int o : outcomes) EXPECT_EQ(o, 3);  // all timed out
    const rpc::RpcStats& st = server->stats();
    EXPECT_EQ(st.responses_expired, 1u);
    EXPECT_EQ(st.calls_expired, 3u);
    EXPECT_EQ(st.calls_handled, 1u);
    // Connection id 1 -> shard 0; the other shards never see a call.
    ASSERT_EQ(st.shards.size(), 4u);
    EXPECT_EQ(st.shards[0].dispatched, 4u);
    EXPECT_EQ(st.shards[0].dropped, 3u);  // the three expired-at-dequeue
    for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(st.shards[i].dispatched, 0u) << i;
    server->stop();
    s.drain_tasks();
  }
}

// --- Retry cache on a sharded server ----------------------------------------

// A timed-out non-idempotent call retried onto the same connection hits
// the home shard's retry cache: one execution, the retry answered from
// the stored frame — shards>1 must not split the dedup state.
TEST(Shard, RetryCacheDedupsOnShardedServer) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);  // bump runs 2 s
    retry.max_retries = 5;
    retry.backoff_base = sim::millis(200);
    retry.non_idempotent.insert(kBump.to_string());
    retry.retry_non_idempotent_on_timeout = true;
    rpc::OverloadConfig ov;
    ov.retry_cache_entries = 64;
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 4,
                                      .server_shards = 4,
                                      .retry = retry,
                                      .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    int runs = 0;
    register_suite(*server, tb.host(1), &runs);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int out = 0;
    s.spawn([](rpc::RpcClient& c, int& v) -> Task {
      rpc::NullWritable arg;
      rpc::IntWritable resp;
      co_await c.call(kAddr, kBump, arg, &resp);
      v = resp.value;
    }(*client, out));
    s.run_until(sim::seconds(60));

    EXPECT_EQ(out, 1);
    EXPECT_EQ(runs, 1);
    EXPECT_GE(client->stats().retries, 1u);
    EXPECT_GE(server->stats().dedup_hits, 1u);
    EXPECT_EQ(server->stats().responses_expired, 1u);
    server->stop();
    s.drain_tasks();
  }
}

// --- Response batching within a shard ---------------------------------------

// Concurrent small calls from two connections on different shards: each
// caller still gets exactly its own response (batches never mix frames
// across connections, and so never across shards), and the response
// coalescer engages on the sharded path.
TEST(Shard, ResponseBatchingStaysWithinEachShard) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::BatchConfig batch;
    batch.enabled = true;
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 4,
                                      .server_shards = 2,
                                      .batch = batch});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();

    // Connection 1 -> shard 0, connection 2 -> shard 1.
    std::unique_ptr<rpc::RpcClient> c0 = engine.make_client(tb.host(0));
    std::unique_ptr<rpc::RpcClient> c1 = engine.make_client(tb.host(2));
    int matched = 0;
    for (int i = 0; i < 8; ++i) {
      s.spawn(echo_one(*c0, 100 + i, matched));
      s.spawn(echo_one(*c1, 200 + i, matched));
    }
    s.run_until(sim::seconds(60));

    EXPECT_EQ(matched, 16);  // every response carried its caller's value
    const rpc::RpcStats& st = server->stats();
    EXPECT_GT(st.response_batches, 0u);
    EXPECT_GT(st.batched_responses, 0u);
    ASSERT_EQ(st.shards.size(), 2u);
    EXPECT_EQ(st.shards[0].dispatched, 8u);
    EXPECT_EQ(st.shards[1].dispatched, 8u);
    server->stop();
    s.drain_tasks();
  }
}

// --- Work stealing ----------------------------------------------------------

// With stealing on, the idle sibling shard's handler drains the loaded
// shard's backlog: steals on the thief match stolen on the victim, and
// every call still completes (bookkeeping stays on the home shard).
TEST(Shard, StealingDrainsSiblingBacklog) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 2,
                                      .server_shards = 2,
                                      .shard_steal = true});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1), nullptr, sim::millis(100));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    // 8 concurrent 100 ms calls over one connection (home shard 0); the
    // shard-1 handler has nothing local and must steal to stay busy.
    std::vector<int> outcomes(8, 0);
    for (int& o : outcomes) s.spawn(slow_expect_error(*client, o));
    s.run_until(sim::seconds(5));

    for (int o : outcomes) EXPECT_EQ(o, 1);
    const rpc::RpcStats& st = server->stats();
    ASSERT_EQ(st.shards.size(), 2u);
    std::uint64_t steals = 0, stolen = 0;
    for (const rpc::ShardCounters& sc : st.shards) {
      steals += sc.steals;
      stolen += sc.stolen;
    }
    EXPECT_EQ(steals, stolen);
    EXPECT_GT(st.shards[1].steals, 0u);  // the idle shard helped
    EXPECT_GT(st.shards[0].stolen, 0u);
    EXPECT_EQ(st.calls_handled, 8u);
    server->stop();
    s.drain_tasks();
  }
}

// --- stop() drains every shard ----------------------------------------------

// Backlogged calls queued on all four shards at stop(): each shard's
// drain is accounted on that shard, the aggregate matches, and (RPCoIB)
// every pooled buffer — queued frames, posted receives, in-flight calls —
// returns to the pool.
TEST(Shard, StopDrainsEveryShardAndBalancesThePool) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 4,
                                      .server_shards = 4});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();

    // Two connections per shard, two 5 s calls per connection: per shard
    // one call is executing and three are queued when the server stops.
    std::vector<std::unique_ptr<rpc::RpcClient>> clients;
    std::vector<int> outcomes(16, 0);
    for (int i = 0; i < 8; ++i) {
      clients.push_back(engine.make_client(tb.host(kClientHosts[i % 8])));
      s.spawn(slow_expect_error(*clients.back(), outcomes[static_cast<std::size_t>(2 * i)]));
      s.spawn(
          slow_expect_error(*clients.back(), outcomes[static_cast<std::size_t>(2 * i + 1)]));
    }
    s.run_until(sim::seconds(1));
    server->stop();
    for (auto& c : clients) close_client(*c);
    s.run_until(sim::seconds(30));

    for (int o : outcomes) EXPECT_EQ(o, 2);  // every caller saw the teardown
    const rpc::RpcStats& st = server->stats();
    EXPECT_EQ(st.dropped_on_stop, 12u);
    ASSERT_EQ(st.shards.size(), 4u);
    for (const rpc::ShardCounters& sc : st.shards) {
      EXPECT_EQ(sc.dispatched, 4u);
      EXPECT_EQ(sc.dropped, 3u);
    }
    if (auto* srv = dynamic_cast<oib::RdmaRpcServer*>(server.get())) {
      EXPECT_EQ(srv->pool().native().stats().acquires,
                srv->pool().native().stats().releases);
    }
    s.drain_tasks();
  }
}

// --- Stats aggregation ------------------------------------------------------

// The cross-shard aggregation is idempotent (stats() is a rebuild, not an
// accumulation — calling it repeatedly must not double-count) and
// conserves counts: shard counters sum to the aggregate totals.
TEST(Shard, StatsAggregationIsIdempotentAndConserved) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kRpcoIB, .server_shards = 4});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_suite(*server, tb.host(1));
  server->start();

  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(engine.make_client(tb.host(kClientHosts[i % 8])));
    s.spawn(echo_burst(*clients.back(), 5, completed));
  }
  s.run_until(sim::seconds(60));
  EXPECT_EQ(completed, 40);

  const std::string r1 =
      rpc::resilience_report(clients.front()->stats(), nullptr, &server->stats());
  const std::string r2 =
      rpc::resilience_report(clients.front()->stats(), nullptr, &server->stats());
  EXPECT_EQ(r1, r2);  // second aggregation pass changes nothing

  const rpc::RpcStats& st = server->stats();
  ASSERT_EQ(st.shards.size(), 4u);
  std::uint64_t conns = 0;
  for (const rpc::ShardCounters& sc : st.shards) conns += sc.conns_assigned;
  EXPECT_EQ(conns, 8u);
  EXPECT_EQ(sum_dispatched(st), 40u);
  EXPECT_EQ(st.calls_handled, 40u);
  server->stop();
  s.drain_tasks();
}

}  // namespace
}  // namespace rpcoib
