// Edge-case tests for the simulation core: run_until boundaries, channel
// close with queued items, semaphore fairness under churn, wait-group
// reuse, drain semantics, scheduler termination, and host resources.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/host.hpp"
#include "net/testbed.hpp"
#include "sim/channel.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rpcoib::sim {
namespace {

TEST(SchedulerEdge, RunUntilIsExclusiveOfDeadline) {
  Scheduler s;
  bool at_10 = false, at_20 = false;
  s.call_at(micros(10), [&] { at_10 = true; });
  s.call_at(micros(20), [&] { at_20 = true; });
  s.run_until(micros(20));
  EXPECT_TRUE(at_10);
  EXPECT_FALSE(at_20);  // deadline exclusive
  s.run_until(micros(21));
  EXPECT_TRUE(at_20);
}

TEST(SchedulerEdge, StepOnEmptyQueueReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(SchedulerEdge, TerminatedSchedulerIgnoresNewEvents) {
  Scheduler s;
  s.drain_tasks();
  EXPECT_TRUE(s.terminated());
  bool ran = false;
  s.call_at(micros(5), [&] { ran = true; });
  s.run();
  EXPECT_FALSE(ran);
}

Task forever_waiter(Channel<int>& ch, bool& got) {
  (void)co_await ch.recv();
  got = true;
}

TEST(SchedulerEdge, DrainDestroysSuspendedTasks) {
  Scheduler s;
  Channel<int> ch(s);
  bool got = false;
  s.spawn(forever_waiter(ch, got));
  s.run();
  EXPECT_EQ(s.live_task_count(), 1u);
  s.drain_tasks();
  EXPECT_EQ(s.live_task_count(), 0u);
  EXPECT_FALSE(got);
}

Task drain_consumer(Channel<int>& ch, std::vector<int>& got) {
  try {
    for (;;) got.push_back(co_await ch.recv());
  } catch (const ChannelClosed&) {
  }
}

TEST(ChannelEdge, CloseDeliversQueuedItemsFirst) {
  Scheduler s;
  Channel<int> ch(s);
  ch.push(1);
  ch.push(2);
  ch.close();
  std::vector<int> got;
  s.spawn(drain_consumer(ch, got));
  s.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

Task recv_one(Channel<int>& ch, bool& closed_seen) {
  try {
    (void)co_await ch.recv();
  } catch (const ChannelClosed&) {
    closed_seen = true;
  }
}

TEST(ChannelEdge, CloseWakesBlockedReceiverWithException) {
  Scheduler s;
  Channel<int> ch(s);
  bool closed_seen = false;
  s.spawn(recv_one(ch, closed_seen));
  s.call_after(micros(5), [&] { ch.close(); });
  s.run();
  EXPECT_TRUE(closed_seen);
}

TEST(ChannelEdge, RecvOnClosedEmptyChannelThrowsImmediately) {
  Scheduler s;
  Channel<int> ch(s);
  ch.close();
  bool closed_seen = false;
  s.spawn(recv_one(ch, closed_seen));
  s.run();
  EXPECT_TRUE(closed_seen);
}

Task sem_user(Scheduler& s, Semaphore& sem, std::vector<int>& order, int id) {
  co_await sem.acquire();
  order.push_back(id);
  co_await delay(s, micros(10));
  sem.release();
}

TEST(SemaphoreEdge, FifoOrderUnderContention) {
  Scheduler s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) s.spawn(sem_user(s, sem, order, i));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SemaphoreEdge, TryAcquireNeverBlocks) {
  Scheduler s;
  Semaphore sem(s, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

Task wg_user(WaitGroup& wg) {
  wg.done();
  co_return;
}

TEST(WaitGroupEdge, ReusableAfterCompletion) {
  Scheduler s;
  WaitGroup wg(s);
  wg.add(1);
  s.spawn(wg_user(wg));
  s.run();
  EXPECT_EQ(wg.pending(), 0);
  wg.add(2);
  EXPECT_EQ(wg.pending(), 2);
  s.spawn(wg_user(wg));
  s.spawn(wg_user(wg));
  s.run();
  EXPECT_EQ(wg.pending(), 0);
}

Task disk_user(cluster::Host& h, std::size_t bytes, sim::Time& done_at) {
  co_await h.disk_io(bytes);
  done_at = h.sched().now();
}

TEST(HostEdge, DiskIoSerializesConcurrentAccess) {
  Scheduler s;
  net::Testbed tb(s, net::Testbed::cluster_b());
  cluster::Host& h = tb.host(0);
  sim::Time t1 = 0, t2 = 0;
  // Two concurrent 11 MB reads at 110 MB/s: 100 ms each, serialized.
  s.spawn(disk_user(h, 11'000'000, t1));
  s.spawn(disk_user(h, 11'000'000, t2));
  s.run();
  const double first = std::min(to_ms(t1), to_ms(t2));
  const double second = std::max(to_ms(t1), to_ms(t2));
  EXPECT_NEAR(first, 100.0, 2.0);
  EXPECT_NEAR(second, 200.0, 4.0);
}

Task core_user(cluster::Host& h, Dur d, int& running, int& peak) {
  co_await h.compute(0);  // zero-charge shortcut must not touch cores
  ++running;
  peak = std::max(peak, running);
  co_await h.compute(d);
  --running;
}

TEST(HostEdge, ComputeBoundedByCoreCount) {
  Scheduler s;
  net::TestbedConfig cfg = net::Testbed::cluster_b();
  cfg.cores_per_node = 2;
  net::Testbed tb(s, cfg);
  cluster::Host& h = tb.host(0);
  int running = 0, peak = 0;
  for (int i = 0; i < 6; ++i) s.spawn(core_user(h, micros(100), running, peak));
  s.run();
  // 6 jobs x 100us on 2 cores: 300us, never more than 2 in flight inside
  // compute (the counter brackets compute, so peak counts waiters too —
  // assert the makespan instead).
  EXPECT_EQ(s.now(), micros(300));
}

}  // namespace
}  // namespace rpcoib::sim
