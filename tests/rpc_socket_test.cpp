// End-to-end tests of the default (socket) Hadoop RPC path: echo calls,
// concurrent calls, exceptions, multiple clients, stats capture.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpc/socket_client.hpp"
#include "rpc/socket_server.hpp"

namespace rpcoib::rpc {
namespace {

using net::Address;
using net::Testbed;
using net::Transport;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kServerAddr{1, 9000};

// Named method keys: the codebase rule forbids non-trivially-destructible
// temporaries in co_await statements (see sim/task.hpp).
const MethodKey kEcho{"test.EchoProtocol", "echo"};
const MethodKey kAdd{"test.EchoProtocol", "add"};
const MethodKey kFail{"test.EchoProtocol", "fail"};
const MethodKey kNope{"test.EchoProtocol", "nope"};

/// Registers a tiny test protocol on a server:
///   echo(BytesWritable) -> BytesWritable
///   add(two i32)        -> IntWritable
///   fail(Null)          -> always throws
void register_test_protocol(RpcServer& server) {
  server.dispatcher().register_method(
      "test.EchoProtocol", "echo", [](DataInput& in, DataOutput& out) -> Co<void> {
        BytesWritable payload;
        payload.read_fields(in);
        BytesWritable(std::move(payload.value)).write(out);
        co_return;
      });
  server.dispatcher().register_method(
      "test.EchoProtocol", "add", [](DataInput& in, DataOutput& out) -> Co<void> {
        const std::int32_t a = in.read_i32();
        const std::int32_t b = in.read_i32();
        IntWritable(a + b).write(out);
        co_return;
      });
  server.dispatcher().register_method(
      "test.EchoProtocol", "fail", [](DataInput&, DataOutput&) -> Co<void> {
        throw std::runtime_error("deliberate failure");
        co_return;
      });
}

struct AddParam final : Writable {
  std::int32_t a = 0, b = 0;
  void write(DataOutput& out) const override {
    out.write_i32(a);
    out.write_i32(b);
  }
  void read_fields(DataInput& in) override {
    a = in.read_i32();
    b = in.read_i32();
  }
};

struct Fixture {
  Fixture(Scheduler& s, Transport t = Transport::kIPoIB)
      : tb(s, Testbed::cluster_b()),
        server(tb.host(1), tb.sockets(), kServerAddr, 4),
        client(tb.host(0), tb.sockets(), t) {
    register_test_protocol(server);
    server.start();
  }
  ~Fixture() {
    client.close_connections();
    server.stop();
  }
  Testbed tb;
  SocketRpcServer server;
  SocketRpcClient client;
};

Task call_echo(Fixture& f, std::size_t n, net::Bytes& got, bool& ok) {
  net::Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<net::Byte>(i * 7);
  BytesWritable req(payload);
  BytesWritable resp;
  co_await f.client.call(kServerAddr, kEcho, req, &resp);
  got = std::move(resp.value);
  ok = (got == payload);
}

TEST(SocketRpc, EchoRoundTripsPayload) {
  Scheduler s;
  Fixture f(s);
  net::Bytes got;
  bool ok = false;
  s.spawn(call_echo(f, 512, got, ok));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got.size(), 512u);
}

class EchoSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EchoSizes, RoundTripsAllSizes) {
  Scheduler s;
  Fixture f(s);
  net::Bytes got;
  bool ok = false;
  s.spawn(call_echo(f, GetParam(), got, ok));
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(ok) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, EchoSizes,
                         ::testing::Values(1, 4, 64, 1024, 4096, 65536, 1u << 20,
                                           2u << 20));

Task call_add(Fixture& f, std::int32_t a, std::int32_t b, std::int32_t& out) {
  AddParam p;
  p.a = a;
  p.b = b;
  IntWritable r;
  co_await f.client.call(kServerAddr, kAdd, p, &r);
  out = r.value;
}

TEST(SocketRpc, TypedCall) {
  Scheduler s;
  Fixture f(s);
  std::int32_t out = 0;
  s.spawn(call_add(f, 20, 22, out));
  s.run_until(sim::seconds(10));
  EXPECT_EQ(out, 42);
}

TEST(SocketRpc, ManyConcurrentCallsMultiplexOneConnection) {
  Scheduler s;
  Fixture f(s);
  constexpr int kN = 32;
  std::vector<std::int32_t> out(kN, 0);
  for (int i = 0; i < kN; ++i) s.spawn(call_add(f, i, 1000, out[static_cast<std::size_t>(i)]));
  s.run_until(sim::seconds(30));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 1000 + i);
}

Task call_fail(Fixture& f, bool& remote_ex, std::string& msg) {
  NullWritable arg;
  try {
    co_await f.client.call(kServerAddr, kFail, arg, nullptr);
  } catch (const RemoteException& e) {
    remote_ex = true;
    msg = e.what();
  }
}

TEST(SocketRpc, HandlerExceptionSurfacesAsRemoteException) {
  Scheduler s;
  Fixture f(s);
  bool remote_ex = false;
  std::string msg;
  s.spawn(call_fail(f, remote_ex, msg));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(remote_ex);
  EXPECT_EQ(msg, "deliberate failure");
}

Task call_unknown(Fixture& f, bool& remote_ex) {
  NullWritable arg;
  try {
    co_await f.client.call(kServerAddr, kNope, arg, nullptr);
  } catch (const RemoteException&) {
    remote_ex = true;
  }
}

TEST(SocketRpc, UnknownMethodIsRemoteError) {
  Scheduler s;
  Fixture f(s);
  bool remote_ex = false;
  s.spawn(call_unknown(f, remote_ex));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(remote_ex);
}

Task call_refused(Fixture& f, bool& transport_err) {
  NullWritable arg;
  try {
    co_await f.client.call({5, 4242}, kAdd, arg, nullptr);
  } catch (const RpcTransportError&) {
    transport_err = true;
  }
}

TEST(SocketRpc, ConnectionRefusedIsTransportError) {
  Scheduler s;
  Fixture f(s);
  bool transport_err = false;
  s.spawn(call_refused(f, transport_err));
  s.run_until(sim::seconds(10));
  EXPECT_TRUE(transport_err);
}

TEST(SocketRpc, StatsCaptureTableOneQuantities) {
  Scheduler s;
  Fixture f(s);
  std::int32_t out = 0;
  for (int i = 0; i < 10; ++i) s.spawn(call_add(f, i, i, out));
  s.run_until(sim::seconds(30));

  const MethodKey key{"test.EchoProtocol", "add"};
  ASSERT_TRUE(f.client.stats().methods.contains(key));
  const MethodProfile& prof = f.client.stats().methods.at(key);
  EXPECT_EQ(prof.mem_adjustments.count(), 10u);
  // Request is ~50 bytes: 32 -> 64 is one adjustment.
  EXPECT_GE(prof.mem_adjustments.mean(), 1.0);
  EXPECT_GT(prof.serialize_us.mean(), 0.0);
  EXPECT_GT(prof.send_us.mean(), 0.0);
  EXPECT_GT(prof.total_us.mean(), prof.serialize_us.mean());
  EXPECT_EQ(f.client.stats().calls_sent, 10u);
  EXPECT_EQ(f.server.stats().calls_handled, 10u);
  EXPECT_EQ(f.server.stats().recv_total_us.count(), 10u);
  EXPECT_GT(f.server.stats().recv_alloc_us.mean(), 0.0);
}

TEST(SocketRpc, SizeSequencesRecordedWhenEnabled) {
  Scheduler s;
  Fixture f(s);
  f.client.stats().record_sequences = true;
  std::int32_t out = 0;
  for (int i = 0; i < 5; ++i) s.spawn(call_add(f, i, i, out));
  s.run_until(sim::seconds(30));
  const MethodProfile& prof = f.client.stats().methods.at({"test.EchoProtocol", "add"});
  ASSERT_EQ(prof.size_sequence.size(), 5u);
  // add() has fixed-size params: perfect message size locality.
  for (std::uint32_t sz : prof.size_sequence) EXPECT_EQ(sz, prof.size_sequence[0]);
}

Task two_clients_run(Fixture& f, SocketRpcClient& c2, std::int32_t& o1, std::int32_t& o2) {
  AddParam p;
  p.a = 1;
  p.b = 2;
  IntWritable r1, r2;
  co_await f.client.call(kServerAddr, kAdd, p, &r1);
  co_await c2.call(kServerAddr, kAdd, p, &r2);
  o1 = r1.value;
  o2 = r2.value;
}

TEST(SocketRpc, MultipleClientHostsShareOneServer) {
  Scheduler s;
  Fixture f(s);
  SocketRpcClient c2(f.tb.host(2), f.tb.sockets(), Transport::kIPoIB);
  std::int32_t o1 = 0, o2 = 0;
  s.spawn(two_clients_run(f, c2, o1, o2));
  s.run_until(sim::seconds(10));
  EXPECT_EQ(o1, 3);
  EXPECT_EQ(o2, 3);
  c2.close_connections();
}

Task call_add_catching(SocketRpcClient& c, std::int32_t a, std::int32_t b,
                       std::int32_t& out, bool& failed) {
  AddParam p;
  p.a = a;
  p.b = b;
  IntWritable r;
  try {
    co_await c.call(kServerAddr, kAdd, p, &r);
    out = r.value;
  } catch (const RpcTransportError&) {
    failed = true;
  }
}

Task start_server_after_failure(Scheduler& s, SocketRpcServer& server, const bool& failed) {
  // Poll at 1 us: the first caller's connect failure wakes the waiters,
  // and the first waiter's replacement SYN is still in flight (one-way
  // latency is several us) when the listener comes up — so the retry
  // connects while the other waiter is parked on the replacement's
  // `ready` event.
  while (!failed) co_await sim::delay(s, sim::micros(1));
  server.start();
}

// Regression: a caller woken from a broken connection's `ready` event must
// not clobber the replacement another waiter already installed. Pre-fix,
// the second waiter erased the map entry unconditionally, orphaning the
// first waiter's connection (two connections opened, stranded receive
// loop); post-fix it adopts the replacement and exactly one connection is
// established.
TEST(SocketRpc, ReconnectRaceAdoptsReplacementConnection) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  SocketRpcServer server(tb.host(1), tb.sockets(), kServerAddr, 4);
  register_test_protocol(server);
  // Server NOT started yet: the first call installs the connection entry,
  // suspends in connect (SYN), and fails at the listener check.
  SocketRpcClient client(tb.host(0), tb.sockets(), Transport::kIPoIB);
  std::int32_t out_a = 0, out_b = 0, out_c = 0;
  bool failed_a = false, failed_b = false, failed_c = false;
  s.spawn(call_add_catching(client, 1, 1, out_a, failed_a));   // installs, fails
  s.spawn(call_add_catching(client, 2, 3, out_b, failed_b));   // waits on ready
  s.spawn(call_add_catching(client, 10, 20, out_c, failed_c)); // waits on ready
  s.spawn(start_server_after_failure(s, server, failed_a));
  s.run_until(sim::seconds(10));

  EXPECT_TRUE(failed_a);  // no listener at its connect
  EXPECT_FALSE(failed_b);
  EXPECT_FALSE(failed_c);
  EXPECT_EQ(out_b, 5);
  EXPECT_EQ(out_c, 30);
  // One waiter reconnected; the other adopted that replacement instead of
  // clobbering it with a second connection.
  EXPECT_EQ(client.stats().connections_opened, 1u);
  client.close_connections();
  server.stop();
  s.drain_tasks();
}

// Regression: destroying a client whose receive loop is parked in read()
// must not leave the loop touching freed state when the peer's teardown
// finally wakes it (close() is a half-close — the local reader is only
// woken by the *server* closing its end). Pre-fix this was a use-after-
// free under ASan; post-fix the loop observes the cancelled flag and
// exits.
TEST(SocketRpc, DestroyClientWithParkedReceiverIsSafe) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  SocketRpcServer server(tb.host(1), tb.sockets(), kServerAddr, 4);
  register_test_protocol(server);
  server.start();
  auto client = std::make_unique<SocketRpcClient>(tb.host(0), tb.sockets(),
                                                  Transport::kIPoIB);
  std::int32_t out = 0;
  bool failed = false;
  s.spawn(call_add_catching(*client, 3, 4, out, failed));
  s.run_until(sim::seconds(1));
  ASSERT_EQ(out, 7);
  // The call is done but the receive loop is still blocked in read() on
  // the idle connection. Destroy the client under it...
  client.reset();
  // ...then tear down the server: its side's close reaches the parked
  // reader, which resumes exactly once more after the client is gone.
  server.stop();
  s.run_until(sim::seconds(2));
}

TEST(SocketRpc, LatencyOrderingAcrossTransports) {
  auto latency = [](Transport t) {
    Scheduler s;
    Fixture f(s, t);
    std::int32_t out = 0;
    const sim::Time t0 = s.now();
    s.spawn(call_add(f, 1, 2, out));
    s.run_until(sim::seconds(10));
    EXPECT_EQ(out, 3);
    return f.client.stats().methods.at({"test.EchoProtocol", "add"}).total_us.mean() +
           sim::to_us(t0) * 0;
  };
  const double gige = latency(Transport::kOneGigE);
  const double tengige = latency(Transport::kTenGigE);
  const double ipoib = latency(Transport::kIPoIB);
  EXPECT_LT(tengige, gige);
  EXPECT_LT(ipoib, gige);
}

}  // namespace
}  // namespace rpcoib::rpc
