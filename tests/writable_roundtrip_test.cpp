// Property round-trips for every protocol payload in the HDFS, MapReduce,
// and HBase wire vocabularies, plus cross-buffer compatibility (serialize
// via Algorithm-1 buffer, deserialize via RDMA stream and vice versa).
#include <gtest/gtest.h>

#include "hbase/hbase.hpp"
#include "hdfs/types.hpp"
#include "mapred/types.hpp"
#include "net/testbed.hpp"
#include "rpc/buffers.hpp"
#include "rpcoib/rdma_streams.hpp"

namespace rpcoib {
namespace {

const cluster::CostModel kCm{};

template <typename T>
T roundtrip(const T& value) {
  rpc::DataOutputBuffer out(kCm);
  value.write(out);
  rpc::DataInputBuffer in(kCm, out.data());
  T back;
  back.read_fields(in);
  EXPECT_EQ(in.remaining(), 0u) << "trailing bytes after read_fields";
  return back;
}

TEST(HdfsWritables, BlockAndLocatedBlock) {
  hdfs::LocatedBlock lb;
  lb.block = {12345, 64ULL << 20};
  lb.locations = {3, 7, 11};
  rpc::DataOutputBuffer out(kCm);
  lb.write(out);
  rpc::DataInputBuffer in(kCm, out.data());
  hdfs::LocatedBlock back;
  back.read_fields(in);
  EXPECT_EQ(back.block.id, 12345u);
  EXPECT_EQ(back.block.num_bytes, 64ULL << 20);
  EXPECT_EQ(back.locations, lb.locations);
}

TEST(HdfsWritables, AllProtocolPayloads) {
  {
    hdfs::PathParam p("/a/b/c", "client-9");
    hdfs::PathParam b = roundtrip(p);
    EXPECT_EQ(b.path, "/a/b/c");
    EXPECT_EQ(b.client, "client-9");
  }
  {
    hdfs::CreateParam p;
    p.path = "/f";
    p.client = "c";
    p.overwrite = false;
    p.replication = 5;
    p.block_size = 128ULL << 20;
    hdfs::CreateParam b = roundtrip(p);
    EXPECT_EQ(b.replication, 5);
    EXPECT_FALSE(b.overwrite);
    EXPECT_EQ(b.block_size, 128ULL << 20);
  }
  {
    hdfs::LocatedBlocksResult r;
    r.file_length = 999;
    r.blocks.resize(3);
    r.blocks[1].block.id = 42;
    r.blocks[1].locations = {1, 2, 3};
    hdfs::LocatedBlocksResult b = roundtrip(r);
    EXPECT_EQ(b.file_length, 999u);
    ASSERT_EQ(b.blocks.size(), 3u);
    EXPECT_EQ(b.blocks[1].block.id, 42u);
  }
  {
    hdfs::FileStatusResult r;
    r.exists = true;
    r.status.path = "/x";
    r.status.is_dir = true;
    r.status.replication = 3;
    hdfs::FileStatusResult b = roundtrip(r);
    EXPECT_TRUE(b.exists);
    EXPECT_TRUE(b.status.is_dir);
    EXPECT_EQ(b.status.path, "/x");
  }
  {
    hdfs::FileStatusResult r;  // absent file: no status on the wire
    hdfs::FileStatusResult b = roundtrip(r);
    EXPECT_FALSE(b.exists);
  }
  {
    hdfs::BlockReportParam p;
    p.id = 12;
    p.blocks = {{1, 10}, {2, 20}, {3, 30}};
    hdfs::BlockReportParam b = roundtrip(p);
    EXPECT_EQ(b.id, 12);
    ASSERT_EQ(b.blocks.size(), 3u);
    EXPECT_EQ(b.blocks[2].num_bytes, 30u);
  }
  {
    hdfs::HeartbeatResult r;
    r.command = 1;
    r.replicate_target.block.id = 5;
    r.replicate_target.locations = {9};
    hdfs::HeartbeatResult b = roundtrip(r);
    EXPECT_EQ(b.command, 1);
    EXPECT_EQ(b.replicate_target.block.id, 5u);
  }
}

TEST(MapredWritables, JobSubmissionCarriesFullSpec) {
  mapred::JobSubmission sub;
  sub.id = 7;
  sub.spec.name = "terasort";
  sub.spec.num_maps = 2048;
  sub.spec.num_reduces = 256;
  sub.spec.input_bytes = 128ULL << 30;
  sub.spec.map_output_ratio = 0.75;
  sub.spec.map_only = false;
  sub.spec.map_cpu_us_per_mb = 1234.5;
  sub.spec.output_path = "/out/terasort";
  mapred::JobSubmission b = roundtrip(sub);
  EXPECT_EQ(b.id, 7);
  EXPECT_EQ(b.spec.name, "terasort");
  EXPECT_EQ(b.spec.num_maps, 2048);
  EXPECT_EQ(b.spec.input_bytes, 128ULL << 30);
  EXPECT_DOUBLE_EQ(b.spec.map_output_ratio, 0.75);
  EXPECT_DOUBLE_EQ(b.spec.map_cpu_us_per_mb, 1234.5);
  EXPECT_EQ(b.spec.output_path, "/out/terasort");
}

TEST(MapredWritables, HeartbeatWithRunningTasks) {
  mapred::HeartbeatRequest req;
  req.tracker = 33;
  req.free_map_slots = 2;
  req.free_reduce_slots = 1;
  req.running.resize(3);
  req.running[0].job = 1;
  req.running[0].task = 17;
  req.running[0].type = mapred::TaskType::kReduce;
  req.running[0].progress = 0.5f;
  req.completed.push_back({1, 4, mapred::TaskType::kMap});
  mapred::HeartbeatRequest b = roundtrip(req);
  EXPECT_EQ(b.tracker, 33);
  ASSERT_EQ(b.running.size(), 3u);
  EXPECT_EQ(b.running[0].task, 17);
  EXPECT_EQ(b.running[0].type, mapred::TaskType::kReduce);
  EXPECT_FLOAT_EQ(b.running[0].progress, 0.5f);
  ASSERT_EQ(b.completed.size(), 1u);
  EXPECT_EQ(b.completed[0].task, 4);
  // The named counter set survives the trip (Table I's payload weight).
  EXPECT_EQ(b.running[0].counters.size(),
            mapred::TaskReport::default_counters().size());
}

TEST(MapredWritables, StatusUpdateIsAdjustmentHeavy) {
  mapred::StatusUpdateParam p;
  p.report.job = 1;
  p.report.task = 2;
  p.state_string = "reduce > copy (3 of 64 at 1.2 MB/s)";
  rpc::DataOutputBuffer out(kCm);  // 32-byte client default
  p.write(out);
  // The named-counter payload forces multiple Algorithm-1 adjustments —
  // the Table I behaviour (avg 5).
  EXPECT_GE(out.stats().mem_adjustments, 4u);
  rpc::DataInputBuffer in(kCm, out.data());
  mapred::StatusUpdateParam b;
  b.read_fields(in);
  EXPECT_EQ(b.state_string, p.state_string);
}

TEST(HBaseWritables, PutGetRoundTrip) {
  hbase::PutParam p;
  p.key = "user12345";
  p.value.assign(1024, net::Byte{0xEE});
  hbase::PutParam b = roundtrip(p);
  EXPECT_EQ(b.key, "user12345");
  EXPECT_EQ(b.value, p.value);

  hbase::GetResult r;
  r.found = true;
  r.value.assign(77, net::Byte{1});
  hbase::GetResult back = roundtrip(r);
  EXPECT_TRUE(back.found);
  EXPECT_EQ(back.value.size(), 77u);

  hbase::GetResult miss;
  EXPECT_FALSE(roundtrip(miss).found);
}

TEST(CrossBuffer, Alg1ToRdmaStreamAndBack) {
  sim::Scheduler s;
  net::Testbed tb(s, net::Testbed::cluster_b());
  verbs::VerbsStack stack(tb.fabric());
  oib::NativeBufferPool pool(tb.host(0), stack);
  oib::ShadowPool shadow(pool);
  const rpc::MethodKey key{"x", "y"};

  hdfs::HeartbeatParam p;
  p.id = 3;
  p.used_bytes = 123456789;
  p.xceiver_count = 9;

  // Serialize with the RDMA stream, deserialize with the heap reader.
  oib::RDMAOutputStream rout(kCm, shadow, key);
  p.write(rout);
  rpc::DataInputBuffer hin(kCm, rout.data());
  hdfs::HeartbeatParam b1;
  b1.read_fields(hin);
  EXPECT_EQ(b1.used_bytes, p.used_bytes);

  // Serialize with Algorithm 1, deserialize with the RDMA reader.
  rpc::DataOutputBuffer hout(kCm);
  p.write(hout);
  oib::RDMAInputStream rin(kCm, hout.data());
  hdfs::HeartbeatParam b2;
  b2.read_fields(rin);
  EXPECT_EQ(b2.xceiver_count, 9u);

  oib::NativeBuffer* buf = rout.take_buffer();
  rout.finish(buf);
}

}  // namespace
}  // namespace rpcoib
