// Server-side overload protection: bounded call queues with pluggable
// admission policies, in-band deadline propagation, retry-cache dedup of
// retried calls, graceful degradation on buffer-pool exhaustion, and the
// stop()-drain accounting — on both transports.
//
// Every test is seedable through RPCOIB_CHAOS_SEED (the chaos-suite
// convention) so CI can sweep seeds; same seed => byte-identical runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/testbed.hpp"
#include "rpc/overload.hpp"
#include "rpc/resilience.hpp"
#include "rpcoib/engine.hpp"
#include "rpcoib/rdma_client.hpp"
#include "rpcoib/rdma_server.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9500};
const rpc::MethodKey kEcho{"test.SlowProtocol", "echo"};
const rpc::MethodKey kSlow{"test.SlowProtocol", "slow"};
const rpc::MethodKey kSlowB{"test.OtherProtocol", "slow"};
const rpc::MethodKey kBump{"test.SlowProtocol", "bump"};
const rpc::MethodKey kPut{"test.BulkProtocol", "put"};

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RPCOIB_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// echo: IntWritable roundtrip. slow/slowB: sleep `slow_for`, return true.
/// bump: non-idempotent — increments *runs, sleeps `bump_for`, returns the
/// new count. put: reads a BytesWritable, acks with a small boolean.
void register_suite(rpc::RpcServer& server, cluster::Host& host, int* runs = nullptr,
                    sim::Dur slow_for = sim::seconds(5),
                    sim::Dur bump_for = sim::seconds(2)) {
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method,
      [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable v;
        v.read_fields(in);
        v.write(out);
        co_return;
      });
  auto slow = [&host, slow_for](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
    co_await sim::delay(host.sched(), slow_for);
    rpc::BooleanWritable(true).write(out);
  };
  server.dispatcher().register_method(kSlow.protocol, kSlow.method, slow);
  server.dispatcher().register_method(kSlowB.protocol, kSlowB.method, slow);
  if (runs != nullptr) {
    server.dispatcher().register_method(
        kBump.protocol, kBump.method,
        [&host, runs, bump_for](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
          ++*runs;
          co_await sim::delay(host.sched(), bump_for);
          rpc::IntWritable(*runs).write(out);
        });
  }
  server.dispatcher().register_method(
      kPut.protocol, kPut.method, [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::BytesWritable payload;
        payload.read_fields(in);
        rpc::BooleanWritable(true).write(out);
        co_return;
      });
}

enum CallOutcome { kPending = 0, kOk, kBusy, kTimeout, kOtherError };

Task call_one(rpc::RpcClient& client, const rpc::MethodKey& key, CallOutcome& outcome) {
  rpc::NullWritable arg;
  rpc::BooleanWritable resp;
  try {
    co_await client.call(kAddr, key, arg, &resp);
    outcome = kOk;
  } catch (const rpc::ServerBusyException&) {
    outcome = kBusy;
  } catch (const rpc::RpcTimeoutError&) {
    outcome = kTimeout;
  } catch (const rpc::RpcTransportError&) {
    outcome = kOtherError;
  }
}

// --- Pure policy/cache units ------------------------------------------------

TEST(Overload, RetryCacheEvictsLeastRecentlyUsed) {
  rpc::RetryCache cache(2);
  EXPECT_EQ(cache.begin(1, 1), rpc::RetryCache::State::kFresh);
  cache.complete(1, 1, net::Bytes{1});
  EXPECT_EQ(cache.begin(1, 2), rpc::RetryCache::State::kFresh);
  cache.complete(1, 2, net::Bytes{2});
  // Touch (1,1) so (1,2) becomes the LRU entry, then insert a third.
  EXPECT_EQ(cache.begin(1, 1), rpc::RetryCache::State::kCompleted);
  EXPECT_EQ(cache.begin(1, 3), rpc::RetryCache::State::kFresh);
  cache.complete(1, 3, net::Bytes{3});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.completed_frame(1, 2), nullptr);  // LRU entry was evicted
  EXPECT_NE(cache.completed_frame(1, 1), nullptr);  // recently-touched kept

  // A completion whose in-progress entry was evicted mid-execution is
  // re-inserted: the retry on its way must still find the outcome.
  rpc::RetryCache tiny(1);
  EXPECT_EQ(tiny.begin(7, 1), rpc::RetryCache::State::kFresh);
  EXPECT_EQ(tiny.begin(7, 2), rpc::RetryCache::State::kFresh);  // evicts (7,1)
  tiny.complete(7, 1, net::Bytes{9});
  ASSERT_NE(tiny.completed_frame(7, 1), nullptr);
  EXPECT_EQ((*tiny.completed_frame(7, 1))[0], 9);
}

TEST(Overload, AdmissionPolicyDecisions) {
  rpc::OverloadConfig cfg;
  cfg.max_call_queue = 2;
  rpc::AdmissionController newest(cfg);
  EXPECT_EQ(newest.decide(1, "p"), rpc::AdmissionController::Decision::kAdmit);
  EXPECT_EQ(newest.decide(2, "p"), rpc::AdmissionController::Decision::kShedNewest);

  cfg.policy = rpc::AdmissionPolicy::kRejectOldest;
  rpc::AdmissionController oldest(cfg);
  EXPECT_EQ(oldest.decide(2, "p"), rpc::AdmissionController::Decision::kShedOldest);

  cfg.policy = rpc::AdmissionPolicy::kProtocolQuota;
  cfg.max_call_queue = 10;
  cfg.protocol_quota = 1;
  rpc::AdmissionController quota(cfg);
  EXPECT_EQ(quota.decide(0, "a"), rpc::AdmissionController::Decision::kAdmit);
  quota.on_enqueue("a");
  EXPECT_EQ(quota.decide(1, "a"), rpc::AdmissionController::Decision::kShedNewest);
  EXPECT_EQ(quota.decide(1, "b"), rpc::AdmissionController::Decision::kAdmit);
  quota.on_dequeue("a");
  EXPECT_EQ(quota.decide(0, "a"), rpc::AdmissionController::Decision::kAdmit);
}

// --- Admission control on the wire ------------------------------------------

TEST(Overload, RejectNewestShedsExcessCalls) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::OverloadConfig ov;
    ov.max_call_queue = 2;
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_handlers = 1, .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    std::vector<CallOutcome> results(6, kPending);
    for (CallOutcome& r : results) s.spawn(call_one(*client, kSlow, r));
    s.run_until(sim::seconds(60));

    int ok = 0, busy = 0;
    for (CallOutcome r : results) {
      if (r == kOk) ++ok;
      if (r == kBusy) ++busy;
    }
    EXPECT_EQ(ok + busy, 6);
    EXPECT_GE(busy, 1);
    EXPECT_GE(ok, 1);
    EXPECT_EQ(server->stats().calls_shed, static_cast<std::uint64_t>(busy));
    EXPECT_LE(server->stats().queue_depth_peak, 2u);
    server->stop();
    s.drain_tasks();
  }
}

TEST(Overload, ShedCallsAreRetryableToCompletion) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::OverloadConfig ov;
    ov.max_call_queue = 2;
    rpc::RpcRetryPolicy retry;
    retry.max_retries = 30;
    retry.backoff_base = sim::millis(200);
    // No call_timeout: the only failure mode in play is "busy", which is
    // always retryable — even for non-idempotent methods (never executed).
    retry.non_idempotent.insert(kSlow.to_string());
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 1,
                                      .retry = retry,
                                      .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1), nullptr, /*slow_for=*/sim::seconds(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    std::vector<CallOutcome> results(6, kPending);
    for (CallOutcome& r : results) s.spawn(call_one(*client, kSlow, r));
    s.run_until(sim::seconds(120));

    for (CallOutcome r : results) EXPECT_EQ(r, kOk);
    EXPECT_GT(client->stats().busy_rejections, 0u);
    EXPECT_GT(server->stats().calls_shed, 0u);
    EXPECT_LE(server->stats().queue_depth_peak, 2u);
    server->stop();
    s.drain_tasks();
  }
}

TEST(Overload, RejectOldestFavorsNewestArrivals) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::OverloadConfig ov;
    ov.max_call_queue = 2;
    ov.policy = rpc::AdmissionPolicy::kRejectOldest;
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_handlers = 1, .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    std::vector<CallOutcome> results(6, kPending);
    for (CallOutcome& r : results) s.spawn(call_one(*client, kSlow, r));
    s.run_until(sim::seconds(60));

    int ok = 0, busy = 0;
    for (CallOutcome r : results) {
      if (r == kOk) ++ok;
      if (r == kBusy) ++busy;
    }
    EXPECT_EQ(ok + busy, 6);
    EXPECT_GE(busy, 1);
    // Under reject-oldest the *last* arrival survives — the inverse of the
    // reject-newest shape, proving the policy switch reached the queue.
    EXPECT_EQ(results.back(), kOk);
    EXPECT_EQ(server->stats().calls_shed, static_cast<std::uint64_t>(busy));
    EXPECT_LE(server->stats().queue_depth_peak, 2u);
    server->stop();
    s.drain_tasks();
  }
}

TEST(Overload, ProtocolQuotaIsolatesProtocols) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::OverloadConfig ov;
    ov.policy = rpc::AdmissionPolicy::kProtocolQuota;
    ov.max_call_queue = 8;
    ov.protocol_quota = 1;
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_handlers = 1, .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    // Three calls on protocol A exceed its quota of one queued call; the
    // other protocol's call must still be admitted.
    std::vector<CallOutcome> a(3, kPending);
    CallOutcome b = kPending;
    for (CallOutcome& r : a) s.spawn(call_one(*client, kSlow, r));
    s.spawn(call_one(*client, kSlowB, b));
    s.run_until(sim::seconds(60));

    int a_busy = 0;
    for (CallOutcome r : a) {
      if (r == kBusy) ++a_busy;
    }
    EXPECT_GE(a_busy, 1);
    EXPECT_EQ(b, kOk);
    EXPECT_EQ(server->stats().calls_shed, static_cast<std::uint64_t>(a_busy));
    server->stop();
    s.drain_tasks();
  }
}

// --- Deadline propagation ---------------------------------------------------

TEST(Overload, DeadlineExpiresQueuedCallsAndDropsLateResponses) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);  // handler runs 5 s
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_handlers = 1, .retry = retry});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    std::vector<CallOutcome> results(4, kPending);
    for (CallOutcome& r : results) s.spawn(call_one(*client, kSlow, r));
    s.run_until(sim::seconds(60));

    for (CallOutcome r : results) EXPECT_EQ(r, kTimeout);
    // The executing call finishes past its deadline (response dropped
    // unsent); the three queued behind it expire at dequeue unexecuted.
    EXPECT_EQ(server->stats().responses_expired, 1u);
    EXPECT_EQ(server->stats().calls_expired, 3u);
    EXPECT_EQ(server->stats().calls_handled, 1u);
    EXPECT_EQ(client->stats().timeouts, 4u);
    server->stop();
    s.drain_tasks();
  }
}

// --- Retry cache: non-idempotent safety -------------------------------------

TEST(Overload, RetryCacheMakesTimeoutRetrySafeForNonIdempotent) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);  // bump runs 2 s
    retry.max_retries = 5;
    retry.backoff_base = sim::millis(200);
    retry.non_idempotent.insert(kBump.to_string());
    retry.retry_non_idempotent_on_timeout = true;
    rpc::OverloadConfig ov;
    ov.retry_cache_entries = 64;
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 1,
                                      .retry = retry,
                                      .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    int runs = 0;
    register_suite(*server, tb.host(1), &runs);
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int out = 0;
    s.spawn([](rpc::RpcClient& c, int& v) -> Task {
      rpc::NullWritable arg;
      rpc::IntWritable resp;
      co_await c.call(kAddr, kBump, arg, &resp);
      v = resp.value;
    }(*client, out));
    s.run_until(sim::seconds(60));

    // The first attempt executed but answered too late; the retry was
    // served from the cache. One execution, correct value, no double bump.
    EXPECT_EQ(out, 1);
    EXPECT_EQ(runs, 1);
    EXPECT_GE(client->stats().timeouts, 1u);
    EXPECT_GE(client->stats().retries, 1u);
    EXPECT_GE(server->stats().dedup_hits, 1u);
    EXPECT_EQ(server->stats().responses_expired, 1u);
    server->stop();
    s.drain_tasks();
  }
}

TEST(Overload, InFlightDuplicateIsDroppedNotReexecuted) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);  // bump runs 3 s
    retry.max_retries = 6;
    retry.backoff_base = sim::millis(500);
    retry.non_idempotent.insert(kBump.to_string());
    retry.retry_non_idempotent_on_timeout = true;
    rpc::OverloadConfig ov;
    ov.retry_cache_entries = 64;
    RpcEngine engine(tb, EngineConfig{.mode = mode,
                                      .server_handlers = 2,
                                      .retry = retry,
                                      .overload = ov});
    auto server = engine.make_server(tb.host(1), kAddr);
    int runs = 0;
    register_suite(*server, tb.host(1), &runs, sim::seconds(5), /*bump_for=*/sim::seconds(3));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    int out = 0;
    s.spawn([](rpc::RpcClient& c, int& v) -> Task {
      rpc::NullWritable arg;
      rpc::IntWritable resp;
      co_await c.call(kAddr, kBump, arg, &resp);
      v = resp.value;
    }(*client, out));
    s.run_until(sim::seconds(120));

    // A retry that lands while the first attempt is still executing on the
    // other handler is dropped, not run concurrently; a later retry is
    // answered from the cache.
    EXPECT_EQ(out, 1);
    EXPECT_EQ(runs, 1);
    EXPECT_GE(server->stats().dedup_in_flight, 1u);
    EXPECT_GE(server->stats().dedup_hits, 1u);
    server->stop();
    s.drain_tasks();
  }
}

// --- Graceful degradation: buffer-pool exhaustion ---------------------------

Task put_one(rpc::RpcClient& client, std::size_t bytes, CallOutcome& outcome) {
  rpc::BytesWritable payload(net::Bytes(bytes, net::Byte{0x5a}));
  rpc::BooleanWritable resp;
  try {
    co_await client.call(kAddr, kPut, payload, &resp);
    outcome = resp.value ? kOk : kOtherError;
  } catch (const rpc::ServerBusyException&) {
    outcome = kBusy;
  } catch (const rpc::RpcTransportError&) {
    outcome = kOtherError;
  }
}

TEST(Overload, PoolExhaustionNacksRendezvousAndFallsBackToSocket) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_handlers = 1};
  // Recv slots come from the freelist; only the >64 KB rendezvous class is
  // demand-allocated, and at most one demand allocation is allowed.
  ec.pool.buffers_per_class = 32;
  ec.pool.demand_alloc_cap = 1;
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  register_suite(*server, tb.host(1));
  server->start();
  // The client gets its own *uncapped* pool: the cap under test here is the
  // server's rendezvous-fetch one (client-side serialization caps are
  // covered by the Regrow* tests).
  oib::RdmaClientConfig cc;
  cc.pool.buffers_per_class = 32;
  std::unique_ptr<rpc::RpcClient> client = std::make_unique<oib::RdmaRpcClient>(
      tb.host(0), tb.sockets(), engine.verbs(), cc);

  // Six concurrent 96 KB calls: the first rendezvous fetch takes the one
  // allowed demand allocation; overlapping fetches are NACKed and must
  // complete transparently over the socket fallback path.
  std::vector<CallOutcome> results(6, kPending);
  for (CallOutcome& r : results) s.spawn(put_one(*client, 96u << 10, r));
  s.run_until(sim::seconds(60));

  for (CallOutcome r : results) EXPECT_EQ(r, kOk);
  auto* srv = dynamic_cast<oib::RdmaRpcServer*>(server.get());
  ASSERT_NE(srv, nullptr);
  const oib::PoolStats& pool = srv->pool().native().stats();
  EXPECT_LE(pool.demand_allocations, 1u);
  EXPECT_GE(pool.demand_denied, 1u);
  EXPECT_GE(server->stats().pool_nacks, 1u);
  EXPECT_EQ(server->stats().pool_nacks,
            client->stats().nack_fallbacks);
  // A NACK is transient back-pressure, not a broken transport: the address
  // is NOT rerouted permanently.
  auto* rdma = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);
  EXPECT_EQ(rdma->fallback_address_count(), 0u);
  server->stop();
  s.drain_tasks();
}

// The same cap on the *client* side: serializing a large request re-gets
// through try_acquire now, so a capped client pool degrades the call to
// the socket fallback instead of demand-allocating past the cap (or
// failing the call outright).
TEST(Overload, ClientRegrowCapDegradesToSocketFallback) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_handlers = 2};
  ec.pool.buffers_per_class = 32;
  ec.pool.demand_alloc_cap = 1;
  RpcEngine engine(tb, ec);
  auto server = engine.make_server(tb.host(1), kAddr);
  register_suite(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  // Three concurrent 96 KB puts: the first serialization takes the one
  // allowed demand allocation and keeps it leased until its response; the
  // overlapping ones are denied mid-serialization and must complete over
  // the socket path.
  std::vector<CallOutcome> results(3, kPending);
  for (CallOutcome& r : results) s.spawn(put_one(*client, 96u << 10, r));
  s.run_until(sim::seconds(60));

  for (CallOutcome r : results) EXPECT_EQ(r, kOk);
  EXPECT_GE(client->stats().nack_fallbacks, 1u);
  auto* rdma = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);
  const oib::PoolStats& pool = rdma->pool().native().stats();
  EXPECT_LE(pool.demand_allocations, 1u);
  EXPECT_GE(pool.demand_denied, 1u);
  // Pool pressure is transient: the address is not rerouted permanently.
  EXPECT_EQ(rdma->fallback_address_count(), 0u);
  server->stop();
  s.drain_tasks();
}

// --- stop() drain accounting ------------------------------------------------

TEST(Overload, SocketStopDrainsQueuedCallsWithAccounting) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB, .server_handlers = 1});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_suite(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  std::vector<CallOutcome> results(4, kPending);
  for (CallOutcome& r : results) s.spawn(call_one(*client, kSlow, r));
  s.run_until(sim::seconds(1));  // one executing, three queued
  server->stop();
  s.run_until(sim::seconds(30));

  // Queued-but-unexecuted calls are counted, and every caller (including
  // the in-flight one) observes a transport error — nothing hangs or
  // vanishes silently.
  EXPECT_EQ(server->stats().dropped_on_stop, 3u);
  for (CallOutcome r : results) EXPECT_EQ(r, kOtherError);
  s.drain_tasks();
}

TEST(Overload, RpcoibStopReleasesEveryPooledBuffer) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kRpcoIB, .server_handlers = 1});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_suite(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  std::vector<CallOutcome> results(4, kPending);
  for (CallOutcome& r : results) s.spawn(call_one(*client, kSlow, r));
  s.run_until(sim::seconds(1));  // one executing, three queued
  server->stop();
  auto* rdma = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);
  rdma->close_connections();
  s.run_until(sim::seconds(30));

  // Queued call frames, posted receive slots, and the in-flight call's
  // buffer all return to the pool: acquires balance releases exactly.
  auto* srv = dynamic_cast<oib::RdmaRpcServer*>(server.get());
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(server->stats().dropped_on_stop, 3u);
  EXPECT_EQ(srv->pool().native().stats().acquires, srv->pool().native().stats().releases);
  s.drain_tasks();
}

// --- Dispatch errors --------------------------------------------------------

TEST(Overload, UnknownMethodNamesProtocolAndMethodOnBothTransports) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    RpcEngine engine(tb, EngineConfig{.mode = mode});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_suite(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    std::string remote_msg;
    s.spawn([](rpc::RpcClient& c, std::string& msg) -> Task {
      rpc::NullWritable arg;
      // Named local per the task.hpp codebase rule: a temporary MethodKey
      // inside a co_await statement is double-destroyed by GCC 12.
      const rpc::MethodKey nosuch{"test.SlowProtocol", "nosuch"};
      try {
        co_await c.call(kAddr, nosuch, arg, nullptr);
      } catch (const rpc::RemoteException& e) {
        msg = e.what();
      }
    }(*client, remote_msg));
    s.run_until(sim::seconds(30));

    // The RemoteException must name the <protocol, method> pair so a
    // version-skewed client can tell *what* the server rejected.
    EXPECT_NE(remote_msg.find("test.SlowProtocol"), std::string::npos) << remote_msg;
    EXPECT_NE(remote_msg.find("nosuch"), std::string::npos) << remote_msg;
    server->stop();
    s.drain_tasks();
  }
}

// --- The seeded overload storm ----------------------------------------------

Task storm_burst(Scheduler& s, rpc::RpcClient& client, int echoes, int bumps,
                 std::size_t put_bytes, int& completed, int& failed) {
  for (int i = 0; i < echoes + bumps + 1; ++i) {
    try {
      if (i < echoes) {
        rpc::IntWritable param(i), resp;
        co_await client.call(kAddr, kEcho, param, &resp);
        if (resp.value == i) ++completed;
      } else if (i < echoes + bumps) {
        rpc::NullWritable arg;
        rpc::IntWritable resp;
        co_await client.call(kAddr, kBump, arg, &resp);
        ++completed;
      } else {
        rpc::BytesWritable payload(net::Bytes(put_bytes, net::Byte{0x11}));
        rpc::BooleanWritable resp;
        co_await client.call(kAddr, kPut, payload, &resp);
        if (resp.value) ++completed;
      }
    } catch (const rpc::RpcTransportError&) {
      ++failed;
    }
    co_await sim::delay(s, sim::millis(5));
  }
}

TEST(Overload, StormIsBoundedAndByteIdenticalAcrossRuns) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    auto run_once = [mode] {
      auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
      plan->set_default_faults(
          {.drop_prob = 0.02, .spike_prob = 0.05, .spike_extra = sim::millis(1)});
      net::TestbedConfig cfg = Testbed::cluster_b();
      cfg.fault = plan;
      Scheduler s;
      Testbed tb(s, cfg);
      rpc::RpcRetryPolicy retry;
      retry.call_timeout = sim::millis(400);
      retry.max_retries = 30;
      retry.backoff_base = sim::millis(50);
      retry.non_idempotent.insert(kBump.to_string());
      retry.retry_non_idempotent_on_timeout = true;
      rpc::OverloadConfig ov;
      ov.max_call_queue = 4;
      ov.retry_cache_entries = 64;
      EngineConfig ec{.mode = mode,
                      .server_handlers = 2,
                      .retry = retry,
                      .overload = ov};
      // Enough prealloc for three connections' recv slots (3 x recv_depth)
      // plus response buffers, so the only demand allocations left are the
      // capped rendezvous fetches of the 96 KB puts.
      ec.pool.buffers_per_class = 64;
      ec.pool.demand_alloc_cap = 4;
      RpcEngine engine(tb, ec);
      auto server = engine.make_server(tb.host(1), kAddr);
      int runs = 0;
      register_suite(*server, tb.host(1), &runs, sim::seconds(5),
                     /*bump_for=*/sim::millis(100));
      server->dispatcher().register_method(
          kEcho.protocol, "work",
          [&tb](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
            rpc::IntWritable v;
            v.read_fields(in);
            co_await sim::delay(tb.host(1).sched(), sim::millis(60));
            v.write(out);
          });
      server->start();

      // Nine concurrent bursts from three clients against two handlers and
      // a queue bound of four: shedding, expiry, and dedup all fire.
      std::vector<std::unique_ptr<rpc::RpcClient>> clients;
      int completed = 0, failed = 0, total = 0;
      for (int c = 0; c < 3; ++c) {
        clients.push_back(engine.make_client(tb.host(0)));
        for (int t = 0; t < 3; ++t) {
          s.spawn(storm_burst(s, *clients.back(), 6, 2, 96u << 10, completed, failed));
          total += 6 + 2 + 1;
        }
      }
      s.run_until(sim::seconds(300));

      // Zero unbounded growth, zero lost calls: every shed or expired call
      // was retried to completion, the queue respected its bound, and the
      // pool respected its demand cap.
      EXPECT_EQ(completed, total);
      EXPECT_EQ(failed, 0);
      EXPECT_LE(server->stats().queue_depth_peak, 4u);
      if (mode == RpcMode::kRpcoIB) {
        auto* srv = dynamic_cast<oib::RdmaRpcServer*>(server.get());
        EXPECT_LE(srv->pool().native().stats().demand_allocations, 4u);
      }
      // Non-idempotent safety under the storm: one execution per logical
      // bump call, no matter how many attempts each one took.
      EXPECT_EQ(runs, 3 * 3 * 2);

      rpc::RpcStats merged;
      for (auto& c : clients) merged.merge_resilience(c->stats());
      std::string report =
          rpc::resilience_report(merged, &plan->counters(), &server->stats());
      report += "\nbump runs " + std::to_string(runs);
      report += "\nfinished with " + std::to_string(completed) + "/" +
                std::to_string(total) + "\n";
      server->stop();
      s.drain_tasks();
      return report;
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace rpcoib
