// Failure injection and robustness: server death mid-call, reconnect
// after failure, client shutdown with in-flight calls, NameNode loss,
// end-to-end determinism of whole-cluster runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "hdfs/hdfs_cluster.hpp"
#include "mapred/mr_cluster.hpp"
#include "net/fault.hpp"
#include "net/testbed.hpp"
#include "rpc/resilience.hpp"
#include "rpc/socket_client.hpp"
#include "rpc/socket_server.hpp"
#include "rpcoib/engine.hpp"
#include "workloads/hadoop_jobs.hpp"
#include "workloads/pingpong.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9400};
const rpc::MethodKey kSlow{"test.SlowProtocol", "slow"};
const rpc::MethodKey kEcho{"test.SlowProtocol", "echo"};

void register_slow(rpc::RpcServer& server, cluster::Host& host) {
  server.dispatcher().register_method(
      kSlow.protocol, kSlow.method,
      [&host](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
        co_await sim::delay(host.sched(), sim::seconds(5));
        rpc::BooleanWritable(true).write(out);
      });
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method, [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable v;
        v.read_fields(in);
        v.write(out);
        co_return;
      });
}

Task call_slow_expect_failure(rpc::RpcClient& client, bool& failed) {
  rpc::NullWritable arg;
  try {
    co_await client.call(kAddr, kSlow, arg, nullptr);
  } catch (const rpc::RpcTransportError&) {
    failed = true;
  }
}

TEST(FailureInjection, ServerStopFailsInFlightCalls) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(1), kAddr);
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool failed = false;
  s.spawn(call_slow_expect_failure(*client, failed));
  s.run_until(sim::seconds(1));  // call is in flight (handler sleeping 5s)
  server->stop();                // connection torn down under the call
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(failed);
  s.drain_tasks();
}

Task echo_round(rpc::RpcClient& client, int v, int& out, bool& transport_error) {
  rpc::IntWritable param(v), resp;
  try {
    co_await client.call(kAddr, kEcho, param, &resp);
    out = resp.value;
  } catch (const rpc::RpcTransportError&) {
    transport_error = true;
  }
}

TEST(FailureInjection, ClientReconnectsAfterServerRestart) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  int out1 = 0, out2 = 0;
  bool err1 = false, err2 = false;
  s.spawn(echo_round(*client, 11, out1, err1));
  s.run_until(sim::seconds(5));
  EXPECT_EQ(out1, 11);

  // Kill and restart the server; the cached connection is now dead.
  server->stop();
  s.run_until(sim::seconds(6));
  auto server2 = engine.make_server(tb.host(1), kAddr);
  register_slow(*server2, tb.host(1));
  server2->start();

  // First call after restart may fail on the stale connection; a retry
  // reconnects (Hadoop clients retry at a higher layer).
  s.spawn(echo_round(*client, 22, out2, err2));
  s.run_until(sim::seconds(12));
  if (err2) {
    err2 = false;
    s.spawn(echo_round(*client, 22, out2, err2));
    s.run_until(sim::seconds(20));
  }
  EXPECT_EQ(out2, 22);
  EXPECT_FALSE(err2);
  server2->stop();
  s.drain_tasks();
}

TEST(FailureInjection, RpcoIBServerStopFailsInFlightCalls) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kRpcoIB});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool failed = false;
  s.spawn(call_slow_expect_failure(*client, failed));
  s.run_until(sim::seconds(1));
  server->stop();
  // RPCoIB responses ride the CQ; stopping closes it. The pending call
  // must not hang forever: tear the client down too, failing the call.
  auto* rdma = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);
  rdma->close_connections();
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(failed);
  s.drain_tasks();
}

TEST(FailureInjection, NameNodeLossStopsDatanodeChatterGracefully) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(5));
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  hdfs::HdfsCluster cluster(engine, 0, {1, 2, 3}, hdfs::DataMode::kSocketIPoIB);
  cluster.start();
  s.run_until(sim::seconds(10));
  EXPECT_EQ(cluster.namenode().live_datanodes().size(), 3u);
  // NameNode dies; heartbeat loops must exit via transport errors, not
  // crash the simulation.
  cluster.namenode().stop();
  s.run_until(sim::seconds(30));
  cluster.stop();
  s.drain_tasks();
  SUCCEED();
}

TEST(Determinism, WholeStackRunsAreSeedStable) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<workloads::LatencyResult> r = workloads::run_latency(
        RpcMode::kRpcoIB, {1, 1024}, /*warmup=*/2, /*iters=*/4, seed);
    return std::pair(r[0].avg_us, r[1].avg_us);
  };
  EXPECT_EQ(run_once(123), run_once(123));
}

TEST(Determinism, HdfsWriteTimesAreSeedStable) {
  auto run_once = [] {
    Scheduler s;
    Testbed tb(s, Testbed::cluster_a(6));
    RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
    hdfs::HdfsCluster cluster(engine, 0, {2, 3, 4}, hdfs::DataMode::kSocketIPoIB);
    cluster.start();
    double secs = 0;
    s.spawn([](Testbed& t, hdfs::HdfsCluster& hc, double& out) -> Task {
      std::unique_ptr<hdfs::DFSClient> c = hc.make_client(t.host(1), "w");
      const sim::Time t0 = t.sched().now();
      co_await c->write_file("/d/f", 100u << 20);
      out = sim::to_sec(t.sched().now() - t0);
    }(tb, cluster, secs));
    s.run_until(sim::seconds(600));
    cluster.stop();
    s.drain_tasks();
    return secs;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

// --- Chaos suite ------------------------------------------------------------
//
// Deterministic fault injection + the retry/timeout/backoff policy. Every
// test below is seedable through RPCOIB_CHAOS_SEED so CI can sweep seeds
// (same seed => byte-identical behavior; different seeds => different but
// still deterministic failure schedules).

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RPCOIB_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// RPCOIB_BATCHING=1 turns small-message coalescing on for the chaos
/// engines, so the seed sweep also exercises the batch framing/parsing
/// path under fault injection (retries resubmitting into open batches,
/// flush timers racing teardown).
rpc::BatchConfig chaos_batch() {
  rpc::BatchConfig b;
  b.enabled = std::getenv("RPCOIB_BATCHING") != nullptr;
  return b;
}

/// RPCOIB_SRQ_DEPTH resizes the RPCoIB server's shared receive ring for
/// the chaos engines (tiny rings force the RNR/refill path under faults;
/// 0 selects the legacy per-connection rings). The watermark scales along.
oib::PoolConfig chaos_pool() {
  oib::PoolConfig p;
  if (const char* env = std::getenv("RPCOIB_SRQ_DEPTH")) {
    p.srq_depth = std::strtoull(env, nullptr, 10);
    p.srq_low_watermark = std::max<std::size_t>(1, p.srq_depth / 4);
  }
  return p;
}

/// RPCOIB_CHAOS_CONNS sizes the many-connection chaos sweep (CI runs a
/// 64-connection seed; the default keeps local runs quick).
int chaos_conns() {
  const char* env = std::getenv("RPCOIB_CHAOS_CONNS");
  return env != nullptr ? static_cast<int>(std::strtoul(env, nullptr, 10)) : 6;
}

/// RPCOIB_SHARDS shards every chaos server's receive/dispatch chain
/// (server.shards) on both transports. CI runs the matrix at 1 (default)
/// and 4, plus a striped-SRQ geometry (RPCOIB_SHARDS=4 RPCOIB_SRQ_DEPTH=8
/// RPCOIB_CHAOS_CONNS=64); the byte-identical-per-seed assertions then
/// cover the sharded pipelines too.
int chaos_shards() {
  const char* env = std::getenv("RPCOIB_SHARDS");
  return env != nullptr ? static_cast<int>(std::strtoul(env, nullptr, 10)) : 1;
}

/// RPCOIB_STREAM_CHUNK_KB / RPCOIB_STREAM_DEPTH reshape the bulk-stream
/// ring for the streamed chaos run: tiny chunks multiply the in-flight
/// frame count a mid-stream abort must reclaim, and a depth-1 ring keeps
/// the credit path saturated so faults land inside credit stalls.
oib::stream::StreamConfig chaos_stream() {
  oib::stream::StreamConfig c;
  c.enabled = true;
  if (const char* env = std::getenv("RPCOIB_STREAM_CHUNK_KB")) {
    c.chunk_size = std::strtoull(env, nullptr, 10) << 10;
  }
  if (const char* env = std::getenv("RPCOIB_STREAM_DEPTH")) {
    c.ring_depth = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return c;
}

Task delayed_echo(Scheduler& s, rpc::RpcClient& client, sim::Dur wait, int v, int& out,
                  bool& err) {
  co_await sim::delay(s, wait);
  rpc::IntWritable param(v), resp;
  try {
    co_await client.call(kAddr, kEcho, param, &resp);
    out = resp.value;
  } catch (const rpc::RpcTransportError&) {
    err = true;
  }
}

TEST(Chaos, RetryCarriesCallThroughLinkFlap) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    plan->add_flap(0, 1, sim::seconds(1), sim::seconds(3));
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::millis(500);
    retry.max_retries = 10;
    retry.backoff_base = sim::millis(100);
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_shards = chaos_shards(), .retry = retry, .batch = chaos_batch()});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_slow(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    // Warm call before the flap establishes the connection; the second
    // call is issued mid-outage and must survive on retries alone.
    int warm = 0, out = 0;
    bool warm_err = false, err = false;
    s.spawn(echo_round(*client, 1, warm, warm_err));
    s.spawn(delayed_echo(s, *client, sim::millis(1500), 77, out, err));
    s.run_until(sim::seconds(60));
    EXPECT_EQ(warm, 1);
    EXPECT_EQ(out, 77);
    EXPECT_FALSE(err);
    EXPECT_GT(client->stats().timeouts, 0u);
    EXPECT_GT(client->stats().retries, 0u);
    EXPECT_GT(plan->counters().outage_hits, 0u);
    server->stop();
    s.drain_tasks();
  }
}

Task call_slow_expect_timeout(rpc::RpcClient& client, bool& timed_out) {
  rpc::NullWritable arg;
  try {
    co_await client.call(kAddr, kSlow, arg, nullptr);
  } catch (const rpc::RpcTimeoutError&) {
    timed_out = true;
  }
}

TEST(Chaos, CallTimeoutFailsSlowCall) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);  // handler sleeps 5 s
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_shards = chaos_shards(), .retry = retry, .batch = chaos_batch()});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_slow(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    bool timed_out = false;
    s.spawn(call_slow_expect_timeout(*client, timed_out));
    // Run far past the handler's 5 s so the stale (post-timeout) response
    // also arrives and must be dropped without corrupting the transport.
    s.run_until(sim::seconds(30));
    EXPECT_TRUE(timed_out);
    EXPECT_EQ(client->stats().timeouts, 1u);
    EXPECT_EQ(client->stats().retries, 0u);

    // The connection stays usable after the drop.
    int out = 0;
    bool err = false;
    s.spawn(echo_round(*client, 5, out, err));
    s.run_until(sim::seconds(60));
    EXPECT_EQ(out, 5);
    EXPECT_FALSE(err);
    server->stop();
    s.drain_tasks();
  }
}

TEST(Chaos, NonIdempotentMethodIsNeverRetried) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    Scheduler s;
    Testbed tb(s, Testbed::cluster_b());
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::seconds(1);
    retry.max_retries = 5;
    retry.non_idempotent.insert(kSlow.to_string());
    RpcEngine engine(tb, EngineConfig{.mode = mode, .server_shards = chaos_shards(), .retry = retry, .batch = chaos_batch()});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_slow(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

    bool timed_out = false;
    s.spawn(call_slow_expect_timeout(*client, timed_out));
    s.run_until(sim::seconds(30));
    // A lost reply does not prove the server never executed the call:
    // exactly one attempt, no retries.
    EXPECT_TRUE(timed_out);
    EXPECT_EQ(client->stats().calls_sent, 1u);
    EXPECT_EQ(client->stats().retries, 0u);
    server->stop();
    s.drain_tasks();
  }
}

TEST(Chaos, BootstrapFailureFallsBackToSocketMode) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kRpcoIB});
  auto server = engine.make_server(tb.host(1), kAddr);  // + companion listener
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));
  engine.verbs().inject_bootstrap_failures(1);

  int out = 0;
  bool err = false;
  s.spawn(echo_round(*client, 42, out, err));
  s.run_until(sim::seconds(30));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(err);
  EXPECT_EQ(client->stats().socket_fallbacks, 1u);
  auto* rdma = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);
  EXPECT_EQ(rdma->fallback_address_count(), 1u);

  // The reroute is sticky: later calls keep working without fresh QP
  // bootstrap attempts.
  int out2 = 0;
  bool err2 = false;
  s.spawn(echo_round(*client, 43, out2, err2));
  s.run_until(sim::seconds(60));
  EXPECT_EQ(out2, 43);
  EXPECT_FALSE(err2);
  server->stop();
  s.drain_tasks();
}

Task echo_burst(rpc::RpcClient& client, int n, int& completed) {
  for (int i = 0; i < n; ++i) {
    rpc::IntWritable param(i), resp;
    try {
      co_await client.call(kAddr, kEcho, param, &resp);
      if (resp.value == i) ++completed;
    } catch (const rpc::RpcTransportError&) {
    }
  }
}

TEST(Chaos, SeededFaultRunsYieldByteIdenticalResilienceReports) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    auto run_once = [mode] {
      auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
      plan->set_default_faults(
          {.drop_prob = 0.05, .spike_prob = 0.1, .spike_extra = sim::millis(2)});
      net::TestbedConfig cfg = Testbed::cluster_b();
      cfg.fault = plan;
      Scheduler s;
      Testbed tb(s, cfg);
      rpc::RpcRetryPolicy retry;
      retry.call_timeout = sim::millis(500);
      retry.max_retries = 6;
      RpcEngine engine(tb, EngineConfig{.mode = mode, .server_shards = chaos_shards(), .retry = retry, .batch = chaos_batch()});
      auto server = engine.make_server(tb.host(1), kAddr);
      register_slow(*server, tb.host(1));
      server->start();
      std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));
      int completed = 0;
      s.spawn(echo_burst(*client, 40, completed));
      s.run_until(sim::seconds(120));
      EXPECT_EQ(completed, 40);
      std::string report = rpc::resilience_report(client->stats(), &plan->counters());
      report += "\nfinished at " + std::to_string(s.now());
      server->stop();
      s.drain_tasks();
      return report;
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_EQ(a, b);
  }
}

// Many faulted connections through the shared receive ring: every call
// retries to completion, the SRQ counters stay live, and the whole run is
// byte-identical per seed. RPCOIB_SRQ_DEPTH shrinks the ring (refill and
// RNR under fire) and RPCOIB_CHAOS_CONNS scales the connection count.
TEST(Chaos, SrqServerSurvivesFaultedManyConnectionSweep) {
  auto run_once = [] {
    auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
    plan->set_default_faults(
        {.drop_prob = 0.03, .spike_prob = 0.08, .spike_extra = sim::millis(1)});
    net::TestbedConfig cfg = Testbed::cluster_b();
    cfg.fault = plan;
    Scheduler s;
    Testbed tb(s, cfg);
    rpc::RpcRetryPolicy retry;
    retry.call_timeout = sim::millis(500);
    retry.max_retries = 10;
    retry.backoff_base = sim::millis(50);
    EngineConfig ec{.mode = RpcMode::kRpcoIB, .server_handlers = 4,
                    .server_shards = chaos_shards(), .retry = retry};
    ec.batch = chaos_batch();
    ec.pool = chaos_pool();
    RpcEngine engine(tb, ec);
    auto server = engine.make_server(tb.host(1), kAddr);
    register_slow(*server, tb.host(1));
    server->start();

    static constexpr cluster::HostId kClientHosts[] = {0, 2, 3, 4, 5, 6, 7, 8};
    const int conns = chaos_conns();
    std::vector<std::unique_ptr<rpc::RpcClient>> clients;
    int completed = 0;
    for (int i = 0; i < conns; ++i) {
      clients.push_back(engine.make_client(tb.host(kClientHosts[i % 8])));
      s.spawn(echo_burst(*clients.back(), 8, completed));
    }
    s.run_until(sim::seconds(300));
    EXPECT_EQ(completed, conns * 8);
    if (ec.pool.srq_depth > 0) EXPECT_GT(server->stats().srq_posted, 0u);

    rpc::RpcStats merged;
    for (auto& c : clients) merged.merge_resilience(c->stats());
    std::string report =
        rpc::resilience_report(merged, &plan->counters(), &server->stats());
    report += "\nfinished at " + std::to_string(s.now());
    server->stop();
    s.drain_tasks();
    return report;
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Chaos, DisabledFaultPlanIsByteIdenticalToNoPlan) {
  enum class Plan { kNone, kEmpty, kDatagramLossOnly };
  auto run_once = [](Plan variant) {
    Scheduler s;
    net::TestbedConfig cfg = Testbed::cluster_b();
    if (variant != Plan::kNone) {
      auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
      // The datagram-loss knob must be inert for RC/socket traffic: only
      // the UD send path consults it, so with UD off the run must stay
      // byte-identical to a fault-free fabric even with loss configured.
      if (variant == Plan::kDatagramLossOnly) plan->set_datagram_loss(0.5);
      cfg.fault = plan;
    }
    Testbed tb(s, cfg);
    RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kRpcoIB});
    auto server = engine.make_server(tb.host(1), kAddr);
    register_slow(*server, tb.host(1));
    server->start();
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));
    int completed = 0;
    s.spawn(echo_burst(*client, 20, completed));
    s.run_until(sim::seconds(60));
    EXPECT_EQ(completed, 20);
    const sim::Time done_at = s.now();
    server->stop();
    s.drain_tasks();
    return done_at;
  };
  // An attached-but-empty plan draws zero random numbers and adds zero
  // delay: virtual timings match a fault-free fabric exactly.
  const sim::Time base = run_once(Plan::kNone);
  EXPECT_EQ(base, run_once(Plan::kEmpty));
  EXPECT_EQ(base, run_once(Plan::kDatagramLossOnly));
}

// --- FaultPlan RNG stream isolation -----------------------------------------
//
// The three fault sources draw from three independent streams of the same
// seed: configuring (and drawing from) the datagram-loss knob must leave
// the drop/spike and kill schedules bit-identical, and vice versa. This
// pins the property the chaos suite's byte-identity tests rely on when
// the UD matrix leg flips RPCOIB_UD=1 on an otherwise unchanged seed.
TEST(Determinism, DatagramLossKnobRidesItsOwnRngStream) {
  const net::LinkFaults faults{.drop_prob = 0.2, .spike_prob = 0.2,
                               .spike_extra = sim::millis(1)};
  // Signature of the drop/spike/kill schedule; optionally interleave a
  // datagram draw between every step to try to perturb it.
  auto reliable_sig = [&faults](bool draw_datagrams) {
    net::FaultPlan p(chaos_seed());
    p.set_default_faults(faults);
    p.set_kill_prob(0.1);
    if (draw_datagrams) p.set_datagram_loss(0.5);
    std::string sig;
    for (int i = 0; i < 256; ++i) {
      const sim::Time now = sim::millis(i);
      const net::FaultDecision d = p.decide(0, 1, now, /*reliable=*/(i % 2) == 0);
      sig += d.lost ? 'L' : '.';
      sig += std::to_string(d.extra);
      sig += p.take_kill(0, 1, now) ? 'K' : '-';
      if (draw_datagrams) (void)p.take_datagram_loss(0, 1, now);
    }
    return sig;
  };
  EXPECT_EQ(reliable_sig(false), reliable_sig(true));

  // And the mirror: the datagram-loss schedule is unchanged when the
  // drop/spike/kill knobs are configured and drawn from in between.
  auto datagram_sig = [&faults](bool draw_others) {
    net::FaultPlan p(chaos_seed());
    p.set_datagram_loss(0.5);
    if (draw_others) {
      p.set_default_faults(faults);
      p.set_kill_prob(0.1);
    }
    std::string sig;
    for (int i = 0; i < 256; ++i) {
      const sim::Time now = sim::millis(i);
      sig += p.take_datagram_loss(0, 1, now) ? 'X' : '.';
      if (draw_others) {
        (void)p.decide(0, 1, now, /*reliable=*/(i % 2) == 0);
        (void)p.take_kill(0, 1, now);
      }
    }
    return sig;
  };
  EXPECT_EQ(datagram_sig(false), datagram_sig(true));
}

TEST(Chaos, HdfsPipelineRetriesThroughDatanodeLoss) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(6));
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  hdfs::HdfsConfig cfg;
  cfg.block_size = 4ULL << 20;
  cfg.pipeline_retries = 50;
  cfg.heartbeat_interval = sim::seconds(2);
  cfg.dn_dead_after = sim::seconds(6);
  cfg.replication_check_interval = sim::seconds(2);
  hdfs::HdfsCluster cluster(engine, 0, {2, 3, 4, 5}, hdfs::DataMode::kSocketIPoIB, cfg);
  cluster.start();
  s.run_until(sim::seconds(1));  // registrations land

  bool done = false;
  std::uint64_t retried = 0;
  s.spawn([](Testbed& t, hdfs::HdfsCluster& hc, bool& ok, std::uint64_t& n) -> Task {
    std::unique_ptr<hdfs::DFSClient> c = hc.make_client(t.host(1), "chaos-writer");
    co_await c->write_file("/chaos/f", 128u << 20);
    n = c->pipeline_retries_count();
    ok = true;
  }(tb, cluster, done, retried));
  s.run_until(s.now() + sim::millis(80));  // a few of the 32 blocks written
  // One pipeline DataNode dies mid-write. The client must abandon the
  // affected block, re-request targets, and still finish the file.
  cluster.datanode_object(2)->stop();
  s.run_until(sim::seconds(900));
  EXPECT_TRUE(done);
  EXPECT_GE(retried, 1u);
  cluster.stop();
  s.drain_tasks();
}

TEST(Chaos, StreamedPipelineRetriesThroughDatanodeLoss) {
  // Same datanode-loss schedule as above, but with the bulk-streaming
  // subsystem carrying the blocks: a mid-stream loss must abort cleanly
  // (no leaked registered chunks), the client must abandonBlock and
  // re-drive the block, and the file must still complete fully replicated.
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(6));
  oib::EngineConfig ec{.mode = RpcMode::kRpcoIB};
  ec.stream = chaos_stream();
  RpcEngine engine(tb, ec);
  hdfs::HdfsConfig cfg;
  cfg.block_size = 4ULL << 20;
  cfg.pipeline_retries = 50;
  cfg.heartbeat_interval = sim::seconds(2);
  cfg.dn_dead_after = sim::seconds(6);
  cfg.replication_check_interval = sim::seconds(2);
  hdfs::HdfsCluster cluster(engine, 0, {2, 3, 4, 5}, hdfs::DataMode::kRdma, cfg);
  cluster.start();
  s.run_until(sim::seconds(1));  // registrations land

  bool done = false;
  std::uint64_t retried = 0;
  std::uint64_t client_aborts = 0;
  std::uint64_t client_opened = 0;
  s.spawn([](Testbed& t, hdfs::HdfsCluster& hc, bool& ok, std::uint64_t& n,
             std::uint64_t& aborts, std::uint64_t& opened) -> Task {
    std::unique_ptr<hdfs::DFSClient> c = hc.make_client(t.host(1), "chaos-writer");
    co_await c->write_file("/chaos/streamed", 128u << 20);
    n = c->pipeline_retries_count();
    if (c->stream_hub() != nullptr) {
      aborts = c->stream_hub()->stats().stream_aborts;
      opened = c->stream_hub()->stats().streams_opened;
    }
    ok = true;
  }(tb, cluster, done, retried, client_aborts, client_opened));
  s.run_until(s.now() + sim::millis(80));  // a few of the 32 blocks in flight
  // One pipeline DataNode dies mid-write: its hub aborts every active
  // stream, upstream writers see the abort, and the client re-drives the
  // affected block through abandonBlock + fresh targets.
  cluster.datanode_object(2)->stop();
  s.run_until(sim::seconds(900));
  EXPECT_TRUE(done);
  EXPECT_GE(retried, 1u);
  EXPECT_GE(client_opened, 32u);  // the blocks still went through streams
  EXPECT_GE(client_aborts, 1u);   // at least the interrupted one aborted

  cluster.stop();
  s.run_until(s.now() + sim::seconds(1));
  // Clean abort everywhere: no registered ring/staging slot leaked on any
  // datanode hub, including the one that died mid-stream.
  for (hdfs::DatanodeId id : {2, 3, 4, 5}) {
    oib::stream::StreamHub* hub = cluster.datanode_object(id)->stream_hub();
    ASSERT_NE(hub, nullptr) << id;
    EXPECT_EQ(hub->pool().stats().acquires, hub->pool().stats().releases) << id;
  }
  s.drain_tasks();
}

TEST(Chaos, JobTrackerReexecutesTasksOfLostTaskTracker) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(4));
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  const std::vector<cluster::HostId> slaves = {1, 2, 3};
  hdfs::HdfsConfig hdfs_cfg;
  hdfs_cfg.block_size = 8 << 20;
  hdfs::HdfsCluster hdfs_cluster(engine, 0, slaves, hdfs::DataMode::kSocketIPoIB, hdfs_cfg);
  mapred::JobTrackerConfig jt_cfg;
  jt_cfg.tracker_expiry = sim::seconds(6);
  jt_cfg.expiry_check_interval = sim::seconds(2);
  mapred::MrCluster mr(engine, hdfs_cluster, 0, slaves, {}, jt_cfg);
  hdfs_cluster.start();
  mr.start();

  mapred::JobSpec spec;
  spec.name = "chaos-maps";
  spec.num_maps = 6;
  spec.num_reduces = 0;
  spec.map_only = true;
  spec.input_bytes = 6ULL << 20;
  spec.map_cpu_us_per_mb = 15'000'000.0;  // ~15 s of user CPU per map
  spec.output_path = "/chaos-out";

  double secs = 0;
  s.spawn([](Testbed& t, mapred::MrCluster& c, mapred::JobSpec sp, double& out) -> Task {
    std::unique_ptr<mapred::JobClient> client = c.make_client(t.host(0));
    out = co_await client->run(sp);
  }(tb, mr, spec, secs));
  s.run_until(sim::seconds(5));  // maps assigned and running on all trackers
  mr.stop_tasktracker(0);        // slave dies with tasks in flight
  s.run_until(sim::seconds(600));

  EXPECT_GT(secs, 0.0);
  const mapred::JobStatus st = mr.jobtracker().status_of(1);
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.maps_done, 6);
  EXPECT_GT(mr.jobtracker().tasks_reexecuted(), 0u);
  mr.stop();
  hdfs_cluster.stop();
  s.drain_tasks();
}

TEST(Chaos, MiniSortOverFlappingLinkIsIdenticalAcrossRuns) {
  for (RpcMode mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    SCOPED_TRACE(oib::rpc_mode_name(mode));
    auto run_once = [mode] {
      workloads::ChaosConfig chaos;
      auto plan = std::make_shared<net::FaultPlan>(chaos_seed());
      plan->set_default_faults({.drop_prob = 0.02});
      plan->add_flap(0, 1, sim::seconds(2), sim::seconds(3));
      chaos.fault = plan;
      chaos.retry.call_timeout = sim::seconds(3);
      chaos.retry.max_retries = 4;
      chaos.tracker_expiry = sim::seconds(30);
      chaos.pipeline_retries = 5;
      return workloads::run_randomwriter_sort(mode, /*slaves=*/2, 128ULL << 20,
                                              /*seed=*/7, nullptr, &chaos);
    };
    const workloads::SortResult first = run_once();
    EXPECT_GT(first.randomwriter_secs, 0.0);
    EXPECT_GT(first.sort_secs, 0.0);
    for (int i = 0; i < 4; ++i) {
      const workloads::SortResult again = run_once();
      EXPECT_EQ(again.randomwriter_secs, first.randomwriter_secs);
      EXPECT_EQ(again.sort_secs, first.sort_secs);
    }
  }
}

}  // namespace
}  // namespace rpcoib
