// Failure injection and robustness: server death mid-call, reconnect
// after failure, client shutdown with in-flight calls, NameNode loss,
// end-to-end determinism of whole-cluster runs.
#include <gtest/gtest.h>

#include <memory>

#include "hdfs/hdfs_cluster.hpp"
#include "net/testbed.hpp"
#include "rpc/socket_client.hpp"
#include "rpc/socket_server.hpp"
#include "rpcoib/engine.hpp"
#include "workloads/pingpong.hpp"

namespace rpcoib {
namespace {

using net::Address;
using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Co;
using sim::Scheduler;
using sim::Task;

constexpr Address kAddr{1, 9400};
const rpc::MethodKey kSlow{"test.SlowProtocol", "slow"};
const rpc::MethodKey kEcho{"test.SlowProtocol", "echo"};

void register_slow(rpc::RpcServer& server, cluster::Host& host) {
  server.dispatcher().register_method(
      kSlow.protocol, kSlow.method,
      [&host](rpc::DataInput&, rpc::DataOutput& out) -> Co<void> {
        co_await sim::delay(host.sched(), sim::seconds(5));
        rpc::BooleanWritable(true).write(out);
      });
  server.dispatcher().register_method(
      kEcho.protocol, kEcho.method, [](rpc::DataInput& in, rpc::DataOutput& out) -> Co<void> {
        rpc::IntWritable v;
        v.read_fields(in);
        v.write(out);
        co_return;
      });
}

Task call_slow_expect_failure(rpc::RpcClient& client, bool& failed) {
  rpc::NullWritable arg;
  try {
    co_await client.call(kAddr, kSlow, arg, nullptr);
  } catch (const rpc::RpcTransportError&) {
    failed = true;
  }
}

TEST(FailureInjection, ServerStopFailsInFlightCalls) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(1), kAddr);
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool failed = false;
  s.spawn(call_slow_expect_failure(*client, failed));
  s.run_until(sim::seconds(1));  // call is in flight (handler sleeping 5s)
  server->stop();                // connection torn down under the call
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(failed);
  s.drain_tasks();
}

Task echo_round(rpc::RpcClient& client, int v, int& out, bool& transport_error) {
  rpc::IntWritable param(v), resp;
  try {
    co_await client.call(kAddr, kEcho, param, &resp);
    out = resp.value;
  } catch (const rpc::RpcTransportError&) {
    transport_error = true;
  }
}

TEST(FailureInjection, ClientReconnectsAfterServerRestart) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  int out1 = 0, out2 = 0;
  bool err1 = false, err2 = false;
  s.spawn(echo_round(*client, 11, out1, err1));
  s.run_until(sim::seconds(5));
  EXPECT_EQ(out1, 11);

  // Kill and restart the server; the cached connection is now dead.
  server->stop();
  s.run_until(sim::seconds(6));
  auto server2 = engine.make_server(tb.host(1), kAddr);
  register_slow(*server2, tb.host(1));
  server2->start();

  // First call after restart may fail on the stale connection; a retry
  // reconnects (Hadoop clients retry at a higher layer).
  s.spawn(echo_round(*client, 22, out2, err2));
  s.run_until(sim::seconds(12));
  if (err2) {
    err2 = false;
    s.spawn(echo_round(*client, 22, out2, err2));
    s.run_until(sim::seconds(20));
  }
  EXPECT_EQ(out2, 22);
  EXPECT_FALSE(err2);
  server2->stop();
  s.drain_tasks();
}

TEST(FailureInjection, RpcoIBServerStopFailsInFlightCalls) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_b());
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kRpcoIB});
  auto server = engine.make_server(tb.host(1), kAddr);
  register_slow(*server, tb.host(1));
  server->start();
  std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));

  bool failed = false;
  s.spawn(call_slow_expect_failure(*client, failed));
  s.run_until(sim::seconds(1));
  server->stop();
  // RPCoIB responses ride the CQ; stopping closes it. The pending call
  // must not hang forever: tear the client down too, failing the call.
  auto* rdma = dynamic_cast<oib::RdmaRpcClient*>(client.get());
  ASSERT_NE(rdma, nullptr);
  rdma->close_connections();
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(failed);
  s.drain_tasks();
}

TEST(FailureInjection, NameNodeLossStopsDatanodeChatterGracefully) {
  Scheduler s;
  Testbed tb(s, Testbed::cluster_a(5));
  RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
  hdfs::HdfsCluster cluster(engine, 0, {1, 2, 3}, hdfs::DataMode::kSocketIPoIB);
  cluster.start();
  s.run_until(sim::seconds(10));
  EXPECT_EQ(cluster.namenode().live_datanodes().size(), 3u);
  // NameNode dies; heartbeat loops must exit via transport errors, not
  // crash the simulation.
  cluster.namenode().stop();
  s.run_until(sim::seconds(30));
  cluster.stop();
  s.drain_tasks();
  SUCCEED();
}

TEST(Determinism, WholeStackRunsAreSeedStable) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<workloads::LatencyResult> r = workloads::run_latency(
        RpcMode::kRpcoIB, {1, 1024}, /*warmup=*/2, /*iters=*/4, seed);
    return std::pair(r[0].avg_us, r[1].avg_us);
  };
  EXPECT_EQ(run_once(123), run_once(123));
}

TEST(Determinism, HdfsWriteTimesAreSeedStable) {
  auto run_once = [] {
    Scheduler s;
    Testbed tb(s, Testbed::cluster_a(6));
    RpcEngine engine(tb, EngineConfig{.mode = RpcMode::kSocketIPoIB});
    hdfs::HdfsCluster cluster(engine, 0, {2, 3, 4}, hdfs::DataMode::kSocketIPoIB);
    cluster.start();
    double secs = 0;
    s.spawn([](Testbed& t, hdfs::HdfsCluster& hc, double& out) -> Task {
      std::unique_ptr<hdfs::DFSClient> c = hc.make_client(t.host(1), "w");
      const sim::Time t0 = t.sched().now();
      co_await c->write_file("/d/f", 100u << 20);
      out = sim::to_sec(t.sched().now() - t0);
    }(tb, cluster, secs));
    s.run_until(sim::seconds(600));
    cluster.stop();
    s.drain_tasks();
    return secs;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

}  // namespace
}  // namespace rpcoib
