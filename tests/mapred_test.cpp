// MapReduce substrate tests: job lifecycle, map-only jobs, sort-shaped
// jobs with shuffle, slot limits, umbilical traffic, RPC-mode sweep.
#include <gtest/gtest.h>

#include <memory>

#include "mapred/mr_cluster.hpp"
#include "net/testbed.hpp"

namespace rpcoib::mapred {
namespace {

using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Scheduler;
using sim::Task;

// Small-cluster fixture: host 0 = master (NN+JT), hosts 1..n = slaves.
struct Fixture {
  Fixture(Scheduler& s, int slaves = 4, RpcMode rpc_mode = RpcMode::kSocketIPoIB,
          hdfs::DataMode data_mode = hdfs::DataMode::kSocketIPoIB,
          hdfs::HdfsConfig hdfs_cfg = small_blocks(), TaskTrackerConfig tt_cfg = {})
      : Fixture(s, slaves, EngineConfig{.mode = rpc_mode}, data_mode, hdfs_cfg, tt_cfg) {}
  Fixture(Scheduler& s, int slaves, EngineConfig ec,
          hdfs::DataMode data_mode = hdfs::DataMode::kSocketIPoIB,
          hdfs::HdfsConfig hdfs_cfg = small_blocks(), TaskTrackerConfig tt_cfg = {})
      : tb(s, Testbed::cluster_a(1 + slaves)),
        engine(tb, ec),
        hdfs_cluster(engine, 0, slave_ids(slaves), data_mode, hdfs_cfg),
        mr(engine, hdfs_cluster, 0, slave_ids(slaves), tt_cfg) {
    hdfs_cluster.start();
    mr.start();
  }
  static hdfs::HdfsConfig small_blocks() {
    hdfs::HdfsConfig cfg;
    cfg.block_size = 8 << 20;
    return cfg;
  }
  static std::vector<cluster::HostId> slave_ids(int n) {
    std::vector<cluster::HostId> out;
    for (int i = 0; i < n; ++i) out.push_back(1 + i);
    return out;
  }
  ~Fixture() {
    mr.stop();
    hdfs_cluster.stop();
  }
  Testbed tb;
  RpcEngine engine;
  hdfs::HdfsCluster hdfs_cluster;
  MrCluster mr;
};

Task run_job(Fixture& f, JobSpec spec, double& secs) {
  std::unique_ptr<JobClient> client = f.mr.make_client(f.tb.host(0));
  secs = co_await client->run(spec);
}

JobSpec small_sort_job() {
  JobSpec spec;
  spec.name = "sort";
  spec.num_maps = 8;
  spec.num_reduces = 4;
  spec.input_bytes = 64ULL << 20;
  spec.map_output_ratio = 1.0;
  spec.reduce_output_ratio = 1.0;
  spec.output_path = "/sort-out";
  return spec;
}

TEST(MapReduce, SortShapedJobCompletes) {
  Scheduler s;
  Fixture f(s);
  double secs = 0;
  s.spawn(run_job(f, small_sort_job(), secs));
  s.run_until(sim::seconds(3600));
  ASSERT_GT(secs, 0.0);

  const JobStatus st = f.mr.jobtracker().status_of(1);
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.maps_done, 8);
  EXPECT_EQ(st.reduces_done, 4);
  // Reduce outputs land in HDFS with full replication.
  hdfs::NameNode& nn = f.hdfs_cluster.namenode();
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(nn.file_exists("/sort-out/part-r-" + std::to_string(r))) << r;
  }
  EXPECT_EQ(nn.file_length("/sort-out/part-r-0"), (64ULL << 20) / 4);
}

TEST(MapReduce, MapOnlyJobCompletesAndWritesOutput) {
  Scheduler s;
  Fixture f(s);
  JobSpec spec;
  spec.name = "randomwriter";
  spec.num_maps = 6;
  spec.num_reduces = 0;
  spec.map_only = true;
  spec.input_bytes = 0;
  spec.map_direct_output_bytes = 8 << 20;
  spec.output_path = "/rw-out";
  double secs = 0;
  s.spawn(run_job(f, spec, secs));
  s.run_until(sim::seconds(3600));
  ASSERT_GT(secs, 0.0);
  hdfs::NameNode& nn = f.hdfs_cluster.namenode();
  for (int m = 0; m < 6; ++m) {
    EXPECT_TRUE(nn.file_exists("/rw-out/part-m-" + std::to_string(m))) << m;
  }
}

TEST(MapReduce, SlotLimitsBoundConcurrency) {
  Scheduler s;
  TaskTrackerConfig tt_cfg;
  tt_cfg.map_slots = 2;
  tt_cfg.reduce_slots = 1;
  Fixture f(s, 2, RpcMode::kSocketIPoIB, hdfs::DataMode::kSocketIPoIB,
            Fixture::small_blocks(), tt_cfg);
  JobSpec spec = small_sort_job();
  spec.num_maps = 12;
  spec.num_reduces = 2;
  double secs = 0;
  s.spawn(run_job(f, spec, secs));
  s.run_until(sim::seconds(3600));
  EXPECT_GT(secs, 0.0);
  EXPECT_TRUE(f.mr.jobtracker().status_of(1).complete);
}

TEST(MapReduce, UmbilicalTrafficRecordedPerTableOneMethods) {
  Scheduler s;
  Fixture f(s);
  double secs = 0;
  s.spawn(run_job(f, small_sort_job(), secs));
  s.run_until(sim::seconds(3600));
  ASSERT_GT(secs, 0.0);

  // The TaskTrackers' umbilical clients must have recorded the Table I
  // methods. Aggregate over the trackers via the engine is not exposed;
  // instead check the JobTracker server saw heartbeats and the NameNode
  // saw ClientProtocol calls.
  EXPECT_GT(f.mr.jobtracker().status_of(1).maps_done, 0);
}

TEST(MapReduce, CompletesOnRpcoIB) {
  Scheduler s;
  Fixture f(s, 4, RpcMode::kRpcoIB, hdfs::DataMode::kRdma);
  double secs = 0;
  s.spawn(run_job(f, small_sort_job(), secs));
  s.run_until(sim::seconds(3600));
  EXPECT_GT(secs, 0.0);
  EXPECT_TRUE(f.mr.jobtracker().status_of(1).complete);
}

TEST(MapReduce, TwoSequentialJobs) {
  Scheduler s;
  Fixture f(s);
  JobSpec j1 = small_sort_job();
  j1.output_path = "/out1";
  JobSpec j2 = small_sort_job();
  j2.num_maps = 4;
  j2.num_reduces = 2;
  j2.output_path = "/out2";
  double s1 = 0, s2 = 0;
  s.spawn([](Fixture& fx, JobSpec a, JobSpec b, double& t1, double& t2) -> Task {
    std::unique_ptr<JobClient> client = fx.mr.make_client(fx.tb.host(0));
    t1 = co_await client->run(a);
    t2 = co_await client->run(b);
  }(f, j1, j2, s1, s2));
  s.run_until(sim::seconds(7200));
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s2, 0.0);
  EXPECT_TRUE(f.mr.jobtracker().status_of(1).complete);
  EXPECT_TRUE(f.mr.jobtracker().status_of(2).complete);
}

TEST(MapReduce, FailedTasksAreRescheduledAndJobCompletes) {
  Scheduler s;
  Fixture f(s);
  JobSpec spec = small_sort_job();
  spec.inject_map_failures = 3;  // first attempts of maps 0-2 die
  double secs = 0;
  s.spawn(run_job(f, spec, secs));
  s.run_until(sim::seconds(3600));
  ASSERT_GT(secs, 0.0);
  const JobStatus st = f.mr.jobtracker().status_of(1);
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.maps_done, 8);
  EXPECT_EQ(st.reduces_done, 4);
}

TEST(MapReduce, InjectedFailuresNeverSpeedTheJobUp) {
  // With ample slots the retried wave overlaps the reduce tail, so the
  // cost can be fully hidden — but a faulty run must never beat a clean
  // one, and both must complete with full task counts.
  auto time_with = [](int failures, JobStatus& st_out) {
    Scheduler s;
    Fixture f(s);
    JobSpec spec = small_sort_job();
    spec.inject_map_failures = failures;
    double secs = 0;
    s.spawn(run_job(f, spec, secs));
    s.run_until(sim::seconds(3600));
    st_out = f.mr.jobtracker().status_of(1);
    return secs;
  };
  JobStatus clean_st, faulty_st;
  const double clean = time_with(0, clean_st);
  const double faulty = time_with(6, faulty_st);
  EXPECT_GT(clean, 0.0);
  EXPECT_GE(faulty, clean);
  EXPECT_TRUE(faulty_st.complete);
  EXPECT_EQ(faulty_st.maps_done, clean_st.maps_done);
}

TEST(MapReduce, StreamedShuffleFetchesSegmentsAndJobCompletes) {
  Scheduler s;
  oib::EngineConfig ec{.mode = RpcMode::kRpcoIB};
  ec.stream.enabled = true;
  // Tight slots spread the 8 maps and 4 reduces across all 4 trackers —
  // with default slots the first heartbeat wins the whole job and every
  // shuffle fetch is node-local (local segments never stream).
  TaskTrackerConfig tt_cfg;
  tt_cfg.map_slots = 2;
  tt_cfg.reduce_slots = 1;
  Fixture f(s, 4, ec, hdfs::DataMode::kRdma, Fixture::small_blocks(), tt_cfg);
  // 64MB input / 8 maps / 4 reduces -> 2MB per-map segments, over the
  // 1MB streaming threshold: remote fetches take the stream path.
  double secs = 0;
  s.spawn(run_job(f, small_sort_job(), secs));
  s.run_until(sim::seconds(3600));
  ASSERT_GT(secs, 0.0);
  const JobStatus st = f.mr.jobtracker().status_of(1);
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.maps_done, 8);
  EXPECT_EQ(st.reduces_done, 4);

  // Remote segments moved as streams: every tracker both served fetches
  // (writer side) and consumed them (reader side) through its hub.
  std::uint64_t opened = 0, chunks = 0, aborts = 0;
  for (std::size_t i = 0; i < f.mr.num_tasktrackers(); ++i) {
    TaskTracker* tt = f.mr.tasktracker(i);
    ASSERT_NE(tt, nullptr);
    ASSERT_NE(tt->stream_hub(), nullptr) << i;
    const rpc::RpcStats& hs = tt->stream_hub()->stats();
    opened += hs.streams_opened;
    chunks += hs.stream_chunks;
    aborts += hs.stream_aborts;
  }
  EXPECT_GT(opened, 0u);
  // Each remote 2MB segment is 8 x 256KB chunks; with 32 fetches mostly
  // remote, well over 100 chunks must have streamed.
  EXPECT_GT(chunks, 100u);
  EXPECT_EQ(aborts, 0u);

  // Reduce outputs still land in HDFS with full replication.
  hdfs::NameNode& nn = f.hdfs_cluster.namenode();
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(nn.file_exists("/sort-out/part-r-" + std::to_string(r))) << r;
  }

  // Explicit teardown ahead of the fixture dtor (stops are idempotent):
  // draining reclaims the hub connection loops so the streamed run stays
  // leak-free under ASan.
  f.mr.stop();
  f.hdfs_cluster.stop();
  s.run_until(s.now() + sim::seconds(1));
  s.drain_tasks();
}

}  // namespace
}  // namespace rpcoib::mapred
