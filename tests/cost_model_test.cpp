// Tests for the host cost model and network parameters: monotonicity,
// calibration-critical orderings, and unit sanity.
#include <gtest/gtest.h>

#include "cluster/cost_model.hpp"
#include "net/params.hpp"

namespace rpcoib {
namespace {

const cluster::CostModel kCm{};

TEST(CostModel, CopyCostsScaleWithSize) {
  EXPECT_LT(kCm.heap_copy(64), kCm.heap_copy(64 * 1024));
  EXPECT_LT(kCm.heap_alloc(64), kCm.heap_alloc(1 << 20));
  EXPECT_LT(kCm.native_copy(0), kCm.native_copy(4096));
}

TEST(CostModel, NativeCopySlowerThanHeapCopy) {
  // The JVM->native crossing is the expensive copy the paper targets.
  EXPECT_GT(kCm.native_copy(1 << 20), kCm.heap_copy(1 << 20));
}

TEST(CostModel, DirectBufferCopyCheapestPerByte) {
  // RPCoIB serializes into DirectByteBuffer-wrapped native memory: no
  // pinning, no kernel crossing.
  EXPECT_LT(kCm.direct_copy(1 << 20), kCm.heap_copy(1 << 20));
  EXPECT_LT(kCm.direct_copy(1 << 20), kCm.native_copy(1 << 20));
}

TEST(CostModel, FixedCostsArePositive) {
  EXPECT_GT(kCm.jni_call(), 0u);
  EXPECT_GT(kCm.field_op(), 0u);
  EXPECT_GT(kCm.thread_wakeup(), 0u);
  EXPECT_GT(kCm.syscall(), 0u);
  EXPECT_GT(kCm.rpc_framework(), 0u);
  EXPECT_GT(kCm.selector(), 0u);
  EXPECT_GT(kCm.cq_poll(), 0u);
}

TEST(NetParams, BandwidthOrdering) {
  using namespace net;
  EXPECT_LT(one_gige_params().bw_gBps, ten_gige_params().bw_gBps);
  EXPECT_LT(ten_gige_params().bw_gBps, ipoib_params().bw_gBps);
  EXPECT_LT(ipoib_params().bw_gBps, ib_verbs_params().bw_gBps);
}

TEST(NetParams, LatencyOrdering) {
  using namespace net;
  // Verbs << everything; 1GigE worst.
  EXPECT_LT(ib_verbs_params().one_way_latency, ten_gige_params().one_way_latency);
  EXPECT_LT(ib_verbs_params().one_way_latency, ipoib_params().one_way_latency);
  EXPECT_GT(one_gige_params().one_way_latency, ipoib_params().one_way_latency);
}

TEST(NetParams, VerbsIsKernelBypass) {
  using namespace net;
  EXPECT_EQ(ib_verbs_params().kernel_copy_gBps, 0.0);
  EXPECT_EQ(ib_verbs_params().kernel_copy(1 << 20), 0u);
  EXPECT_GT(ipoib_params().kernel_copy(1 << 20), 0u);
  // Verbs per-message CPU (doorbell/poll) far below socket stacks.
  EXPECT_LT(ib_verbs_params().per_msg_send_cpu, one_gige_params().per_msg_send_cpu);
}

TEST(NetParams, WireTimeMatchesBandwidth) {
  using namespace net;
  const NetParams p = ib_verbs_params();
  // 3.2 GB/s: 3.2 MB should take ~1 ms.
  EXPECT_NEAR(sim::to_ms(p.wire_time(3200000)), 1.0, 0.01);
  EXPECT_EQ(p.wire_time(0), 0u);
}

TEST(NetParams, ParamsForCoversAllTransports) {
  using namespace net;
  for (Transport t : {Transport::kOneGigE, Transport::kTenGigE, Transport::kIPoIB,
                      Transport::kIBVerbs}) {
    EXPECT_GT(params_for(t).bw_gBps, 0.0) << transport_name(t);
  }
}

}  // namespace
}  // namespace rpcoib
