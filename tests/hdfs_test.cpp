// HDFS substrate tests: namespace ops, write pipeline + replication
// invariants, block reports, reads, multi-client behaviour, and both data
// modes over both RPC modes.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hdfs/hdfs_cluster.hpp"
#include "net/testbed.hpp"

namespace rpcoib::hdfs {
namespace {

using net::Testbed;
using oib::EngineConfig;
using oib::RpcEngine;
using oib::RpcMode;
using sim::Scheduler;
using sim::Task;

struct Fixture {
  Fixture(Scheduler& s, RpcMode rpc_mode = RpcMode::kSocketIPoIB,
          DataMode data_mode = DataMode::kSocketIPoIB, int dns = 4, HdfsConfig cfg = {})
      : Fixture(s, EngineConfig{.mode = rpc_mode}, data_mode, dns, cfg) {}
  Fixture(Scheduler& s, EngineConfig ec, DataMode data_mode, int dns, HdfsConfig cfg = {})
      : tb(s, Testbed::cluster_a(2 + dns)),
        engine(tb, ec),
        cluster(engine, /*nn_host=*/0, dn_hosts(dns), data_mode, cfg) {
    cluster.start();
  }
  static std::vector<cluster::HostId> dn_hosts(int n) {
    std::vector<cluster::HostId> out;
    for (int i = 0; i < n; ++i) out.push_back(2 + i);
    return out;
  }
  Testbed tb;
  RpcEngine engine;
  HdfsCluster cluster;
};

Task do_namespace_ops(Fixture& f, bool& ok) {
  std::unique_ptr<DFSClient> c = f.cluster.make_client(f.tb.host(1), "client1");
  ok = co_await c->mkdirs("/user");
  ok = ok && co_await c->mkdirs("/user/test");
  ok = ok && co_await c->exists("/user/test");
  ok = ok && !(co_await c->exists("/user/nothing"));
  ok = ok && co_await c->rename("/user/test", "/user/renamed");
  ok = ok && co_await c->exists("/user/renamed");
  ok = ok && co_await c->remove("/user/renamed");
  ok = ok && !(co_await c->exists("/user/renamed"));
}

TEST(Hdfs, NamespaceOperations) {
  Scheduler s;
  Fixture f(s);
  bool ok = false;
  s.spawn(do_namespace_ops(f, ok));
  s.run_until(sim::seconds(30));
  EXPECT_TRUE(ok);
  f.cluster.stop();
}

Task do_write(Fixture& f, std::uint64_t nbytes, bool& done) {
  std::unique_ptr<DFSClient> c = f.cluster.make_client(f.tb.host(1), "writer");
  co_await c->write_file("/data/file1", nbytes);
  done = true;
}

TEST(Hdfs, WriteCreatesReplicatedBlocks) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 8 << 20;  // small blocks for a fast test
  Fixture f(s, RpcMode::kSocketIPoIB, DataMode::kSocketIPoIB, 4, cfg);
  bool done = false;
  s.spawn(do_write(f, 20u << 20, done));  // 20MB -> 3 blocks
  s.run_until(sim::seconds(120));
  ASSERT_TRUE(done);

  NameNode& nn = f.cluster.namenode();
  EXPECT_TRUE(nn.file_exists("/data/file1"));
  EXPECT_EQ(nn.file_length("/data/file1"), 20u << 20);
  EXPECT_EQ(nn.num_blocks(), 3u);
  // Replication invariant: every block reported by 3 datanodes.
  std::size_t total_replicas = 0;
  for (BlockId b = 1000; b < 1003; ++b) {
    EXPECT_EQ(nn.replica_count(b), 3u) << b;
    total_replicas += nn.replica_count(b);
  }
  EXPECT_EQ(total_replicas, 9u);
  f.cluster.stop();
}

TEST(Hdfs, WriteWorksOnAllDataAndRpcModes) {
  for (RpcMode rpc_mode : {RpcMode::kSocketIPoIB, RpcMode::kRpcoIB}) {
    for (DataMode data_mode :
         {DataMode::kSocket1GigE, DataMode::kSocketIPoIB, DataMode::kRdma}) {
      Scheduler s;
      HdfsConfig cfg;
      cfg.block_size = 8 << 20;
      Fixture f(s, rpc_mode, data_mode, 3, cfg);
      bool done = false;
      s.spawn(do_write(f, 10u << 20, done));
      s.run_until(sim::seconds(300));
      EXPECT_TRUE(done) << oib::rpc_mode_name(rpc_mode) << "/" << data_mode_name(data_mode);
      f.cluster.stop();
    }
  }
}

Task do_write_read(Fixture& f, std::uint64_t& read_bytes) {
  std::unique_ptr<DFSClient> w = f.cluster.make_client(f.tb.host(1), "writer");
  co_await w->write_file("/data/wr", 12u << 20);
  std::unique_ptr<DFSClient> r = f.cluster.make_client(f.tb.host(1), "reader");
  read_bytes = co_await r->read_file("/data/wr");
}

TEST(Hdfs, ReadReturnsWrittenLength) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 8 << 20;
  Fixture f(s, RpcMode::kSocketIPoIB, DataMode::kSocketIPoIB, 4, cfg);
  std::uint64_t read_bytes = 0;
  s.spawn(do_write_read(f, read_bytes));
  s.run_until(sim::seconds(120));
  EXPECT_EQ(read_bytes, 12u << 20);
  f.cluster.stop();
}

TEST(Hdfs, HeartbeatsKeepDatanodesLive) {
  Scheduler s;
  Fixture f(s);
  s.run_until(sim::seconds(10));
  EXPECT_EQ(f.cluster.namenode().live_datanodes().size(), 4u);
  f.cluster.stop();
}

Task do_listing(Fixture& f, std::size_t& n) {
  std::unique_ptr<DFSClient> c = f.cluster.make_client(f.tb.host(1), "lister");
  co_await c->mkdirs("/out");
  co_await c->write_file("/out/part-00000", 1 << 20);
  co_await c->write_file("/out/part-00001", 1 << 20);
  ListingResult r = co_await c->get_listing("/out");
  n = r.entries.size();
}

TEST(Hdfs, ListingEnumeratesChildren) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 8 << 20;
  Fixture f(s, RpcMode::kSocketIPoIB, DataMode::kSocketIPoIB, 3, cfg);
  std::size_t n = 0;
  s.spawn(do_listing(f, n));
  s.run_until(sim::seconds(120));
  EXPECT_EQ(n, 2u);
  f.cluster.stop();
}

Task write_timed(Fixture& f, std::uint64_t nbytes, double& secs) {
  std::unique_ptr<DFSClient> c = f.cluster.make_client(f.tb.host(1), "w");
  const sim::Time t0 = f.tb.sched().now();
  co_await c->write_file("/perf/file", nbytes);
  secs = sim::to_sec(f.tb.sched().now() - t0);
}

TEST(Hdfs, RdmaDataPathFasterThanSocketPaths) {
  auto time_for = [](DataMode m) {
    Scheduler s;
    Fixture f(s, RpcMode::kSocketIPoIB, m, 4);
    double secs = 0;
    s.spawn(write_timed(f, 256u << 20, secs));
    s.run_until(sim::seconds(600));
    f.cluster.stop();
    EXPECT_GT(secs, 0.0);
    return secs;
  };
  const double gige = time_for(DataMode::kSocket1GigE);
  const double ipoib = time_for(DataMode::kSocketIPoIB);
  const double rdma = time_for(DataMode::kRdma);
  EXPECT_LT(rdma, ipoib);
  EXPECT_LT(ipoib, gige);
}

TEST(Hdfs, RpcoIBReducesWriteTimeAtFixedDataPath) {
  auto time_for = [](RpcMode m) {
    Scheduler s;
    Fixture f(s, m, DataMode::kRdma, 4);
    double secs = 0;
    s.spawn(write_timed(f, 256u << 20, secs));
    s.run_until(sim::seconds(600));
    f.cluster.stop();
    return secs;
  };
  const double ipoib_rpc = time_for(RpcMode::kSocketIPoIB);
  const double rdma_rpc = time_for(RpcMode::kRpcoIB);
  EXPECT_LT(rdma_rpc, ipoib_rpc);
}

TEST(Hdfs, DeadDatanodeTriggersReReplication) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 4 << 20;
  cfg.dn_dead_after = sim::seconds(12);
  cfg.replication_check_interval = sim::seconds(4);
  Fixture f(s, RpcMode::kSocketIPoIB, DataMode::kSocketIPoIB, 5, cfg);
  bool done = false;
  s.spawn(do_write(f, 8u << 20, done));  // 2 blocks, 3 replicas each
  s.run_until(sim::seconds(60));
  ASSERT_TRUE(done);
  NameNode& nn = f.cluster.namenode();
  EXPECT_EQ(nn.replica_count(1000), 3u);

  // Kill the datanode holding block 1000's first replica: find one.
  DataNode* victim = nullptr;
  for (cluster::HostId h : Fixture::dn_hosts(5)) {
    DataNode* dn = f.cluster.datanode(h);
    if (dn != nullptr && dn->has_block(1000)) {
      victim = dn;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->stop();  // heartbeats cease; NameNode declares it dead

  s.run_until(sim::seconds(240));
  // Replication recovered on the remaining nodes.
  EXPECT_EQ(nn.replica_count(1000), 3u);
  EXPECT_EQ(nn.live_datanodes().size(), 4u);
  f.cluster.stop();
  s.drain_tasks();
}

TEST(Hdfs, TotalDatanodeLossDoesNotCrashMonitor) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 4 << 20;
  cfg.dn_dead_after = sim::seconds(12);
  cfg.replication_check_interval = sim::seconds(4);
  Fixture f(s, RpcMode::kSocketIPoIB, DataMode::kSocketIPoIB, 3, cfg);
  bool done = false;
  s.spawn(do_write(f, 4u << 20, done));
  s.run_until(sim::seconds(60));
  ASSERT_TRUE(done);
  for (cluster::HostId h : Fixture::dn_hosts(3)) {
    if (DataNode* dn = f.cluster.datanode(h)) dn->stop();
  }
  s.run_until(sim::seconds(180));
  // All replicas gone (data loss), monitor survived, no live datanodes.
  EXPECT_EQ(f.cluster.namenode().live_datanodes().size(), 0u);
  f.cluster.stop();
  s.drain_tasks();
}

// --- Streamed block pipeline -------------------------------------------------

oib::EngineConfig stream_engine(RpcMode rpc_mode) {
  oib::EngineConfig ec{.mode = rpc_mode};
  ec.stream.enabled = true;
  return ec;
}

/// Stream counters copied out of a hub before its owner dies.
struct StreamCounters {
  bool hub_present = false;
  std::uint64_t opened = 0;
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t denied = 0;
  std::uint64_t aborts = 0;
};

StreamCounters snap(oib::stream::StreamHub* hub) {
  StreamCounters c;
  if (hub == nullptr) return c;
  c.hub_present = true;
  const rpc::RpcStats& st = hub->stats();
  c.opened = st.streams_opened;
  c.chunks = st.stream_chunks;
  c.bytes = st.stream_bytes;
  c.fallbacks = st.stream_fallbacks;
  c.denied = st.stream_pool_denied;
  c.aborts = st.stream_aborts;
  return c;
}

Task do_streamed_write(Fixture& f, std::uint64_t nbytes, StreamCounters& cs, bool& done) {
  std::unique_ptr<DFSClient> c = f.cluster.make_client(f.tb.host(1), "stream-writer");
  co_await c->write_file("/data/streamed", nbytes);
  cs = snap(c->stream_hub());
  done = true;
}

TEST(Hdfs, StreamedWriteReplicatesBlocksAndCountsChunks) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 8 << 20;
  Fixture f(s, stream_engine(RpcMode::kRpcoIB), DataMode::kRdma, 4, cfg);
  StreamCounters cs;
  bool done = false;
  s.spawn(do_streamed_write(f, 20u << 20, cs, done));  // 20MB -> 8+8+4MB blocks
  s.run_until(sim::seconds(120));
  ASSERT_TRUE(done);

  // Same replication invariant as the legacy pipeline...
  NameNode& nn = f.cluster.namenode();
  EXPECT_EQ(nn.file_length("/data/streamed"), 20u << 20);
  EXPECT_EQ(nn.num_blocks(), 3u);
  for (BlockId b = 1000; b < 1003; ++b) EXPECT_EQ(nn.replica_count(b), 3u) << b;

  // ...but every block went through the client's stream hub: one stream
  // per block, 256KB chunks (32 + 32 + 16), no fallback, no abort.
  ASSERT_TRUE(cs.hub_present);
  EXPECT_EQ(cs.opened, 3u);
  EXPECT_EQ(cs.chunks, 80u);
  EXPECT_EQ(cs.bytes, 20u << 20);
  EXPECT_EQ(cs.fallbacks, 0u);
  EXPECT_EQ(cs.aborts, 0u);

  // The datanodes forwarded downstream through their own hubs (two forward
  // legs per block on the writer side, reader-side grants on all three).
  std::uint64_t dn_chunks = 0;
  for (cluster::HostId h : Fixture::dn_hosts(4)) {
    dn_chunks += snap(f.cluster.datanode_object(h)->stream_hub()).chunks;
  }
  EXPECT_GE(dn_chunks, 160u);  // >= 2 forward legs x 80 chunks

  f.cluster.stop();
  s.run_until(s.now() + sim::seconds(1));
  // No leaked registered ring/staging slots anywhere.
  for (cluster::HostId h : Fixture::dn_hosts(4)) {
    oib::stream::StreamHub* hub = f.cluster.datanode_object(h)->stream_hub();
    ASSERT_NE(hub, nullptr);
    EXPECT_EQ(hub->pool().stats().acquires, hub->pool().stats().releases) << h;
  }
  s.drain_tasks();
}

TEST(Hdfs, StreamedWriteFasterThanOneShotAtLargeBlocks) {
  // The acceptance shape of Fig. 7's streamed row: at the largest block
  // size the pipelined chunks overlap serialization, wire, and downstream
  // forwarding, beating the one-shot rendezvous block push.
  auto time_for = [](bool streamed) {
    Scheduler s;
    HdfsConfig cfg;
    cfg.block_size = 64ULL << 20;
    oib::EngineConfig ec{.mode = RpcMode::kRpcoIB};
    ec.stream.enabled = streamed;
    Fixture f(s, ec, DataMode::kRdma, 4, cfg);
    double secs = 0;
    s.spawn(write_timed(f, 256u << 20, secs));
    s.run_until(sim::seconds(600));
    f.cluster.stop();
    s.drain_tasks();
    EXPECT_GT(secs, 0.0);
    return secs;
  };
  const double one_shot = time_for(false);
  const double piped = time_for(true);
  EXPECT_LT(piped, one_shot);
}

TEST(Hdfs, CappedClientStreamPoolFallsBackToLegacyPipeline) {
  Scheduler s;
  HdfsConfig cfg;
  cfg.block_size = 8 << 20;
  // Socket RPC keeps the demand cap's blast radius off the RPC engine's own
  // pools; the cap starves only the stream hubs. Connection bootstrap alone
  // overruns a cap of 1, so no staging slot is ever granted.
  oib::EngineConfig ec{.mode = RpcMode::kSocketIPoIB};
  ec.stream.enabled = true;
  ec.pool.demand_alloc_cap = 1;
  Fixture f(s, ec, DataMode::kRdma, 3, cfg);
  StreamCounters cs;
  bool done = false;
  s.spawn(do_streamed_write(f, 10u << 20, cs, done));
  s.run_until(sim::seconds(120));
  ASSERT_TRUE(done);

  // The write degraded to the legacy one-shot pipeline and still
  // replicated fully.
  NameNode& nn = f.cluster.namenode();
  EXPECT_EQ(nn.file_length("/data/streamed"), 10u << 20);
  for (BlockId b = 1000; b < 1002; ++b) EXPECT_EQ(nn.replica_count(b), 3u) << b;
  ASSERT_TRUE(cs.hub_present);
  EXPECT_EQ(cs.opened, 0u);
  EXPECT_GE(cs.denied, 1u);
  EXPECT_GE(cs.fallbacks, 1u);

  f.cluster.stop();
  s.drain_tasks();
}

}  // namespace
}  // namespace rpcoib::hdfs
