// Unit tests for the discrete-event core: virtual time, task spawning,
// joining, channels, sync primitives, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rpcoib::sim {
namespace {

Task sleeper(Scheduler& s, Dur d, std::vector<int>& log, int id) {
  co_await delay(s, d);
  log.push_back(id);
}

TEST(Scheduler, EventsRunInTimeOrder) {
  Scheduler s;
  std::vector<int> log;
  s.spawn(sleeper(s, micros(30), log, 3));
  s.spawn(sleeper(s, micros(10), log, 1));
  s.spawn(sleeper(s, micros(20), log, 2));
  s.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), micros(30));
}

TEST(Scheduler, SameTimeEventsAreFifo) {
  Scheduler s;
  std::vector<int> log;
  for (int i = 0; i < 5; ++i) s.spawn(sleeper(s, micros(10), log, i));
  s.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CallbacksInPastClampToNow) {
  Scheduler s;
  bool ran = false;
  s.call_after(micros(5), [&] {
    s.call_at(0, [&] { ran = true; });  // in the past
  });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), micros(5));
}

Task sleeper_sets(Scheduler& s, bool& flag) {
  co_await delay(s, micros(100));
  flag = true;
}

Task joins_child(Scheduler& s, bool& child_done, bool& parent_saw) {
  JoinHandle child = s.spawn(sleeper_sets(s, child_done));
  co_await child;
  parent_saw = child_done;
}

TEST(Task, JoinWaitsForCompletion) {
  Scheduler s;
  bool child_done = false, parent_saw = false;
  s.spawn(joins_child(s, child_done, parent_saw));
  s.run();
  EXPECT_TRUE(child_done);
  EXPECT_TRUE(parent_saw);
}

Task thrower(Scheduler& s) {
  co_await delay(s, micros(1));
  throw std::runtime_error("boom");
}

TEST(Task, UnjoinedExceptionPropagatesToRun) {
  Scheduler s;
  s.spawn(thrower(s));
  EXPECT_THROW(s.run(), std::runtime_error);
}

Task catcher(Scheduler& s, bool& caught) {
  JoinHandle h = s.spawn(thrower(s));
  try {
    co_await h;
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, JoinedExceptionRethrownAtJoin) {
  Scheduler s;
  bool caught = false;
  s.spawn(catcher(s, caught));
  s.run();
  EXPECT_TRUE(caught);
}

Co<int> add_later(Scheduler& s, int a, int b) {
  co_await delay(s, micros(7));
  co_return a + b;
}

Co<int> add_twice(Scheduler& s, int a) {
  const int x = co_await add_later(s, a, 1);
  const int y = co_await add_later(s, x, 10);
  co_return y;
}

Task nested_driver(Scheduler& s, int& out) {
  out = co_await add_twice(s, 5);
}

TEST(Co, NestedAwaitablesComposeAndReturnValues) {
  Scheduler s;
  int out = 0;
  s.spawn(nested_driver(s, out));
  s.run();
  EXPECT_EQ(out, 16);
  EXPECT_EQ(s.now(), micros(14));
}

Co<int> co_thrower(Scheduler& s) {
  co_await delay(s, micros(1));
  throw std::logic_error("inner");
}

Task co_catch_driver(Scheduler& s, bool& caught) {
  try {
    (void)co_await co_thrower(s);
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(Co, ExceptionsPropagateThroughAwait) {
  Scheduler s;
  bool caught = false;
  s.spawn(co_catch_driver(s, caught));
  s.run();
  EXPECT_TRUE(caught);
}

Task producer(Scheduler& s, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await delay(s, micros(10));
    ch.push(i);
  }
  ch.close();
}

Task consumer(Scheduler& s, Channel<int>& ch, std::vector<int>& got) {
  (void)s;
  try {
    for (;;) got.push_back(co_await ch.recv());
  } catch (const ChannelClosed&) {
  }
}

TEST(Channel, DeliversInOrderAndSignalsClose) {
  Scheduler s;
  Channel<int> ch(s);
  std::vector<int> got;
  s.spawn(consumer(s, ch, got));
  s.spawn(producer(s, ch, 4));
  s.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Channel, TryRecvNonBlocking) {
  Scheduler s;
  Channel<int> ch(s);
  int v = -1;
  EXPECT_FALSE(ch.try_recv(v));
  ch.push(42);
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 42);
}

Task worker_with_sem(Scheduler& s, Semaphore& sem, int& concurrent, int& peak) {
  co_await sem.acquire();
  ++concurrent;
  peak = std::max(peak, concurrent);
  co_await delay(s, micros(50));
  --concurrent;
  sem.release();
}

TEST(Semaphore, BoundsConcurrency) {
  Scheduler s;
  Semaphore sem(s, 2);
  int concurrent = 0, peak = 0;
  for (int i = 0; i < 6; ++i) s.spawn(worker_with_sem(s, sem, concurrent, peak));
  s.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(concurrent, 0);
  // 6 workers, 2 at a time, 50us each => 150us.
  EXPECT_EQ(s.now(), micros(150));
}

Task event_waiter(Scheduler& s, SimEvent& ev, Time& woke) {
  (void)s;
  co_await ev.wait();
  woke = s.now();
}

Task event_setter(Scheduler& s, SimEvent& ev) {
  co_await delay(s, micros(33));
  ev.set();
}

TEST(SimEvent, WakesAllWaitersAtSetTime) {
  Scheduler s;
  SimEvent ev(s);
  Time w1 = 0, w2 = 0;
  s.spawn(event_waiter(s, ev, w1));
  s.spawn(event_waiter(s, ev, w2));
  s.spawn(event_setter(s, ev));
  s.run();
  EXPECT_EQ(w1, micros(33));
  EXPECT_EQ(w2, micros(33));
}

Task wg_member(Scheduler& s, WaitGroup& wg, Dur d) {
  co_await delay(s, d);
  wg.done();
}

Task wg_waiter(Scheduler& s, WaitGroup& wg, Time& done_at) {
  (void)s;
  co_await wg.wait();
  done_at = s.now();
}

TEST(WaitGroup, WaitsForAllMembers) {
  Scheduler s;
  WaitGroup wg(s);
  Time done_at = 0;
  wg.add(3);
  s.spawn(wg_member(s, wg, micros(10)));
  s.spawn(wg_member(s, wg, micros(99)));
  s.spawn(wg_member(s, wg, micros(50)));
  s.spawn(wg_waiter(s, wg, done_at));
  s.run();
  EXPECT_EQ(done_at, micros(99));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_below(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipfian, SkewsTowardLowKeys) {
  Rng r(42);
  ZipfianGenerator z(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.next(r)];
  // Key 0 must be far more popular than the median key.
  EXPECT_GT(counts[0], 20 * counts[500] + 1);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 100000);
}

// Determinism: two identical simulations produce identical event traces.
Task noisy(Scheduler& s, Rng& rng, std::vector<Time>& trace, Channel<int>& ch, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await delay(s, rng.next_below(100) + 1);
    trace.push_back(s.now());
    ch.push(i);
    (void)co_await ch.recv();
  }
}

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    Scheduler s;
    Rng rng(seed);
    Channel<int> ch(s);
    std::vector<Time> trace;
    for (int i = 0; i < 4; ++i) s.spawn(noisy(s, rng, trace, ch, 25));
    s.run();
    return trace;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

}  // namespace
}  // namespace rpcoib::sim
