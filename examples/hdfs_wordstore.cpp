// Example: a small HDFS session — stand up a NameNode + 4 DataNodes,
// create directories, write replicated files, list and read them back,
// and show the per-method RPC profile that accumulated along the way.
//
//   ./build/examples/hdfs_wordstore [rpcoib]
#include <cstring>
#include <iostream>
#include <memory>

#include "hdfs/hdfs_cluster.hpp"
#include "metrics/table.hpp"
#include "net/testbed.hpp"

using namespace rpcoib;

namespace {

sim::Task session(net::Testbed& tb, hdfs::HdfsCluster& cluster) {
  std::unique_ptr<hdfs::DFSClient> fs = cluster.make_client(tb.host(1), "example");

  co_await fs->mkdirs("/user");
  co_await fs->mkdirs("/user/demo");
  co_await fs->write_file("/user/demo/alpha.dat", 24ULL << 20);
  co_await fs->write_file("/user/demo/beta.dat", 8ULL << 20);

  hdfs::ListingResult ls = co_await fs->get_listing("/user/demo");
  std::cout << "Listing of /user/demo:\n";
  for (const hdfs::FileStatus& st : ls.entries) {
    std::cout << "  " << st.path << "  " << (st.length >> 20) << " MB  x"
              << st.replication << "\n";
  }

  const std::uint64_t read = co_await fs->read_file("/user/demo/alpha.dat");
  std::cout << "Read back " << (read >> 20) << " MB from alpha.dat\n";

  const bool renamed = co_await fs->rename("/user/demo/beta.dat", "/user/demo/gamma.dat");
  std::cout << "Rename beta -> gamma: " << (renamed ? "ok" : "failed") << "\n";
  const bool removed = co_await fs->remove("/user/demo/gamma.dat");
  std::cout << "Delete gamma: " << (removed ? "ok" : "failed") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool use_rdma = argc > 1 && std::strcmp(argv[1], "rpcoib") == 0;
  sim::Scheduler sched;
  net::Testbed tb(sched, net::Testbed::cluster_a(6));
  oib::RpcEngine engine(
      tb, oib::EngineConfig{.mode = use_rdma ? oib::RpcMode::kRpcoIB
                                             : oib::RpcMode::kSocketIPoIB});
  hdfs::HdfsConfig cfg;
  cfg.block_size = 8 << 20;
  hdfs::HdfsCluster cluster(engine, 0, {2, 3, 4, 5},
                            use_rdma ? hdfs::DataMode::kRdma : hdfs::DataMode::kSocketIPoIB,
                            cfg);
  cluster.start();

  sched.spawn(session(tb, cluster));
  sched.run_until(sim::seconds(600));

  std::cout << "\nBlocks in namespace: " << cluster.namenode().num_blocks()
            << ", files: " << cluster.namenode().num_files() << "\n";
  std::cout << "\nPer-method RPC profile (" << oib::rpc_mode_name(engine.config().mode)
            << "):\n";
  metrics::Table t({"Method", "Calls", "Avg total (us)", "Avg msg (B)"});
  for (const auto& [key, prof] : engine.aggregated_profiles()) {
    if (prof.total_us.count() == 0) continue;
    t.row({key.to_string(), std::to_string(prof.total_us.count()),
           metrics::Table::num(prof.total_us.mean(), 1),
           metrics::Table::num(prof.msg_bytes.mean(), 0)});
  }
  t.print(std::cout);

  cluster.stop();
  sched.drain_tasks();
  return 0;
}
