// Example: an end-to-end MapReduce run — RandomWriter generates data, Sort
// sorts it — on a simulated 9-node Hadoop cluster, once over IPoIB RPC and
// once over RPCoIB, printing the job times side by side.
//
//   ./build/examples/terasort_mini [data_mb]
#include <cstdlib>
#include <iostream>

#include "metrics/table.hpp"
#include "workloads/hadoop_jobs.hpp"

int main(int argc, char** argv) {
  using namespace rpcoib;
  const std::uint64_t data_mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;

  std::cout << "Running RandomWriter + Sort over " << data_mb
            << " MB on 9 simulated nodes...\n";

  workloads::SortResult ipoib =
      workloads::run_randomwriter_sort(oib::RpcMode::kSocketIPoIB, 8, data_mb << 20);
  workloads::SortResult rdma =
      workloads::run_randomwriter_sort(oib::RpcMode::kRpcoIB, 8, data_mb << 20);

  metrics::Table t({"Job", "Hadoop (IPoIB)", "Hadoop (RPCoIB)", "Gain"});
  t.row({"RandomWriter", metrics::Table::num(ipoib.randomwriter_secs, 1) + " s",
         metrics::Table::num(rdma.randomwriter_secs, 1) + " s",
         metrics::Table::pct(
             (1.0 - rdma.randomwriter_secs / ipoib.randomwriter_secs) * 100.0)});
  t.row({"Sort", metrics::Table::num(ipoib.sort_secs, 1) + " s",
         metrics::Table::num(rdma.sort_secs, 1) + " s",
         metrics::Table::pct((1.0 - rdma.sort_secs / ipoib.sort_secs) * 100.0)});
  t.print(std::cout);
  return 0;
}
