// Example: HBase-style key-value serving — load records, run a read/write
// mix through HTable clients, watch memstore flushes generate HDFS traffic.
//
//   ./build/examples/hbase_kv_demo [records] [ops]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "net/testbed.hpp"
#include "ycsb/ycsb.hpp"

using namespace rpcoib;

int main(int argc, char** argv) {
  const std::uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

  sim::Scheduler sched;
  net::Testbed tb(sched, net::Testbed::cluster_a(10));
  oib::RpcEngine hadoop_engine(tb, oib::EngineConfig{.mode = oib::RpcMode::kSocketIPoIB});
  oib::RpcEngine hbase_engine(tb, oib::EngineConfig{.mode = oib::RpcMode::kRpcoIB});

  std::vector<cluster::HostId> rs_hosts = {1, 2, 3, 4};
  hdfs::HdfsCluster hdfs_cluster(hadoop_engine, 0, rs_hosts, hdfs::DataMode::kSocketIPoIB);
  hbase::HBaseConfig hb_cfg;
  hb_cfg.memstore_flush_bytes = 1 << 20;
  hbase::HBaseCluster hbase_cluster(hbase_engine, hdfs_cluster, rs_hosts, hb_cfg);
  hdfs_cluster.start();
  hbase_cluster.start();

  ycsb::WorkloadSpec spec;
  spec.record_count = records;
  spec.operation_count = ops;
  spec.read_proportion = 0.5;
  spec.num_clients = 8;

  ycsb::WorkloadResult result;
  sched.spawn([](oib::RpcEngine& eng, hbase::HBaseCluster& hc, ycsb::WorkloadSpec sp,
                 ycsb::WorkloadResult& out) -> sim::Task {
    const std::vector<cluster::HostId> clients = {5, 6, 7, 8, 9};
    out = co_await ycsb::run_workload(eng, hc, clients, sp);
  }(hbase_engine, hbase_cluster, spec, result));
  sched.run_until(sim::seconds(3600));

  std::cout << "Loaded " << records << " records in " << result.load_secs << " s\n"
            << "Ran " << ops << " ops (50/50 get/put) in " << result.run_secs << " s => "
            << result.throughput_kops << " Kops/s\n"
            << "Reads: " << result.reads << " (hits " << result.read_hits << "), writes: "
            << result.writes << "\n";
  std::uint64_t flushes = 0;
  for (std::size_t i = 0; i < hbase_cluster.num_regions(); ++i) {
    flushes += hbase_cluster.region(i).flushes();
  }
  std::cout << "Memstore flushes to HDFS: " << flushes
            << "; HDFS files: " << hdfs_cluster.namenode().num_files() << "\n";

  hbase_cluster.stop();
  hdfs_cluster.stop();
  sched.drain_tasks();
  return 0;
}
