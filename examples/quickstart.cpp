// Quickstart: define an RPC protocol, serve it, and call it over both the
// default socket transport and RPCoIB on a simulated two-node cluster.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "net/testbed.hpp"
#include "rpcoib/engine.hpp"

using namespace rpcoib;

namespace {

// 1. Parameters and results are Writables, exactly like Hadoop's.
struct GreetParam final : rpc::Writable {
  std::string name;
  void write(rpc::DataOutput& out) const override { out.write_text(name); }
  void read_fields(rpc::DataInput& in) override { name = in.read_text(); }
};

const rpc::MethodKey kGreet{"example.GreeterProtocol", "greet"};
constexpr net::Address kServerAddr{1, 9000};

sim::Task run_client(rpc::RpcClient& client, const char* label) {
  GreetParam p;
  p.name = "world";
  rpc::Text reply;
  const sim::Time t0 = client.host().sched().now();
  co_await client.call(kServerAddr, kGreet, p, &reply);
  std::cout << label << ": \"" << reply.value << "\" in "
            << sim::to_us(client.host().sched().now() - t0) << " us (virtual)" << std::endl;
}

}  // namespace

int main() {
  for (oib::RpcMode mode : {oib::RpcMode::kSocketIPoIB, oib::RpcMode::kRpcoIB}) {
    // 2. A simulated testbed: hosts, networks (1GigE/10GigE/IPoIB/IB-verbs).
    // One scheduler per experiment: drain_tasks() is terminal.
    sim::Scheduler sched;
    net::Testbed tb(sched, net::Testbed::cluster_b());
    oib::RpcEngine engine(tb, oib::EngineConfig{.mode = mode});

    // 3. Register a method on a server...
    std::unique_ptr<rpc::RpcServer> server = engine.make_server(tb.host(1), kServerAddr);
    server->dispatcher().register_method(
        kGreet.protocol, kGreet.method,
        [](rpc::DataInput& in, rpc::DataOutput& out) -> sim::Co<void> {
          GreetParam p;
          p.read_fields(in);
          rpc::Text("hello, " + p.name).write(out);
          co_return;
        });
    server->start();

    // 4. ...and call it from another host. The second call is "warm": the
    // RPCoIB path has learned the message size for this <protocol,method>.
    std::unique_ptr<rpc::RpcClient> client = engine.make_client(tb.host(0));
    sched.spawn(run_client(*client, oib::rpc_mode_name(mode)));
    sched.run_until(sim::seconds(5));
    sched.spawn(run_client(*client, oib::rpc_mode_name(mode)));
    sched.run_until(sim::seconds(10));

    server->stop();
    sched.drain_tasks();
  }
  return 0;
}
