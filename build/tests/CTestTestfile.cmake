# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/net_socket_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_writable_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_socket_test[1]_include.cmake")
include("/root/repo/build/tests/rpcoib_pool_test[1]_include.cmake")
include("/root/repo/build/tests/rpcoib_rpc_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_test[1]_include.cmake")
include("/root/repo/build/tests/hbase_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/writable_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
include("/root/repo/build/tests/paper_reproduction_test[1]_include.cmake")
