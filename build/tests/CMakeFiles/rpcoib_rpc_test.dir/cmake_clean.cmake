file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_rpc_test.dir/rpcoib_rpc_test.cpp.o"
  "CMakeFiles/rpcoib_rpc_test.dir/rpcoib_rpc_test.cpp.o.d"
  "rpcoib_rpc_test"
  "rpcoib_rpc_test.pdb"
  "rpcoib_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
