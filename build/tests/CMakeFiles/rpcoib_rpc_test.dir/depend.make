# Empty dependencies file for rpcoib_rpc_test.
# This may be replaced when dependencies are built.
