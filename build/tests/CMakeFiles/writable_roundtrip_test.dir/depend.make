# Empty dependencies file for writable_roundtrip_test.
# This may be replaced when dependencies are built.
