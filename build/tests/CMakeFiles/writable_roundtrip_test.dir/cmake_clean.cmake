file(REMOVE_RECURSE
  "CMakeFiles/writable_roundtrip_test.dir/writable_roundtrip_test.cpp.o"
  "CMakeFiles/writable_roundtrip_test.dir/writable_roundtrip_test.cpp.o.d"
  "writable_roundtrip_test"
  "writable_roundtrip_test.pdb"
  "writable_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writable_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
