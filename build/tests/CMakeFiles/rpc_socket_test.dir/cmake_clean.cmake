file(REMOVE_RECURSE
  "CMakeFiles/rpc_socket_test.dir/rpc_socket_test.cpp.o"
  "CMakeFiles/rpc_socket_test.dir/rpc_socket_test.cpp.o.d"
  "rpc_socket_test"
  "rpc_socket_test.pdb"
  "rpc_socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
