# Empty dependencies file for rpc_socket_test.
# This may be replaced when dependencies are built.
