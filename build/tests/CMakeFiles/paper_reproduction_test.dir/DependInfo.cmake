
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paper_reproduction_test.cpp" "tests/CMakeFiles/paper_reproduction_test.dir/paper_reproduction_test.cpp.o" "gcc" "tests/CMakeFiles/paper_reproduction_test.dir/paper_reproduction_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/rpcoib_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/rpcoib_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/rpcoib_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/hbase/CMakeFiles/rpcoib_hbase.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/rpcoib_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpcoib/CMakeFiles/rpcoib_oib.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpcoib_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpcoib_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/rpcoib_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcoib_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcoib_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
