# Empty compiler generated dependencies file for rpc_writable_test.
# This may be replaced when dependencies are built.
