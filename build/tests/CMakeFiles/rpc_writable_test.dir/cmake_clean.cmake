file(REMOVE_RECURSE
  "CMakeFiles/rpc_writable_test.dir/rpc_writable_test.cpp.o"
  "CMakeFiles/rpc_writable_test.dir/rpc_writable_test.cpp.o.d"
  "rpc_writable_test"
  "rpc_writable_test.pdb"
  "rpc_writable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_writable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
