# Empty dependencies file for rpcoib_pool_test.
# This may be replaced when dependencies are built.
