file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_pool_test.dir/rpcoib_pool_test.cpp.o"
  "CMakeFiles/rpcoib_pool_test.dir/rpcoib_pool_test.cpp.o.d"
  "rpcoib_pool_test"
  "rpcoib_pool_test.pdb"
  "rpcoib_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
