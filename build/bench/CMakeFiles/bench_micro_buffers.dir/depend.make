# Empty dependencies file for bench_micro_buffers.
# This may be replaced when dependencies are built.
