file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_buffers.dir/bench_micro_buffers.cpp.o"
  "CMakeFiles/bench_micro_buffers.dir/bench_micro_buffers.cpp.o.d"
  "bench_micro_buffers"
  "bench_micro_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
