file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cloudburst.dir/bench_fig6_cloudburst.cpp.o"
  "CMakeFiles/bench_fig6_cloudburst.dir/bench_fig6_cloudburst.cpp.o.d"
  "bench_fig6_cloudburst"
  "bench_fig6_cloudburst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cloudburst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
