# Empty compiler generated dependencies file for bench_fig1_alloc_ratio.
# This may be replaced when dependencies are built.
