# Empty dependencies file for bench_fig3_size_locality.
# This may be replaced when dependencies are built.
