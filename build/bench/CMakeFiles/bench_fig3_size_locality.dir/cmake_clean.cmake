file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_size_locality.dir/bench_fig3_size_locality.cpp.o"
  "CMakeFiles/bench_fig3_size_locality.dir/bench_fig3_size_locality.cpp.o.d"
  "bench_fig3_size_locality"
  "bench_fig3_size_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_size_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
