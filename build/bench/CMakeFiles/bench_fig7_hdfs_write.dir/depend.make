# Empty dependencies file for bench_fig7_hdfs_write.
# This may be replaced when dependencies are built.
