file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hdfs_write.dir/bench_fig7_hdfs_write.cpp.o"
  "CMakeFiles/bench_fig7_hdfs_write.dir/bench_fig7_hdfs_write.cpp.o.d"
  "bench_fig7_hdfs_write"
  "bench_fig7_hdfs_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hdfs_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
