# Empty dependencies file for bench_fig6_sort.
# This may be replaced when dependencies are built.
