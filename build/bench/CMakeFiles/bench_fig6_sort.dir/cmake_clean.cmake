file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sort.dir/bench_fig6_sort.cpp.o"
  "CMakeFiles/bench_fig6_sort.dir/bench_fig6_sort.cpp.o.d"
  "bench_fig6_sort"
  "bench_fig6_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
