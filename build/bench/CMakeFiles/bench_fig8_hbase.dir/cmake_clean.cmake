file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hbase.dir/bench_fig8_hbase.cpp.o"
  "CMakeFiles/bench_fig8_hbase.dir/bench_fig8_hbase.cpp.o.d"
  "bench_fig8_hbase"
  "bench_fig8_hbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
