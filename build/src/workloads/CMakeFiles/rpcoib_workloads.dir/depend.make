# Empty dependencies file for rpcoib_workloads.
# This may be replaced when dependencies are built.
