file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_workloads.dir/hadoop_jobs.cpp.o"
  "CMakeFiles/rpcoib_workloads.dir/hadoop_jobs.cpp.o.d"
  "CMakeFiles/rpcoib_workloads.dir/pingpong.cpp.o"
  "CMakeFiles/rpcoib_workloads.dir/pingpong.cpp.o.d"
  "librpcoib_workloads.a"
  "librpcoib_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
