file(REMOVE_RECURSE
  "librpcoib_workloads.a"
)
