file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_hbase.dir/hbase.cpp.o"
  "CMakeFiles/rpcoib_hbase.dir/hbase.cpp.o.d"
  "CMakeFiles/rpcoib_hbase.dir/hmaster.cpp.o"
  "CMakeFiles/rpcoib_hbase.dir/hmaster.cpp.o.d"
  "librpcoib_hbase.a"
  "librpcoib_hbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_hbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
