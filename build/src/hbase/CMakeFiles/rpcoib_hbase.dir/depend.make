# Empty dependencies file for rpcoib_hbase.
# This may be replaced when dependencies are built.
