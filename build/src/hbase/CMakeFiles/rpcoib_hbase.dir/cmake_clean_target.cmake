file(REMOVE_RECURSE
  "librpcoib_hbase.a"
)
