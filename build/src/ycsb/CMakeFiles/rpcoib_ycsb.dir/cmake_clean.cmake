file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_ycsb.dir/ycsb.cpp.o"
  "CMakeFiles/rpcoib_ycsb.dir/ycsb.cpp.o.d"
  "librpcoib_ycsb.a"
  "librpcoib_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
