# Empty dependencies file for rpcoib_ycsb.
# This may be replaced when dependencies are built.
