file(REMOVE_RECURSE
  "librpcoib_ycsb.a"
)
