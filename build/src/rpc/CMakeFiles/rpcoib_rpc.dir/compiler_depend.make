# Empty compiler generated dependencies file for rpcoib_rpc.
# This may be replaced when dependencies are built.
