
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/socket_client.cpp" "src/rpc/CMakeFiles/rpcoib_rpc.dir/socket_client.cpp.o" "gcc" "src/rpc/CMakeFiles/rpcoib_rpc.dir/socket_client.cpp.o.d"
  "/root/repo/src/rpc/socket_server.cpp" "src/rpc/CMakeFiles/rpcoib_rpc.dir/socket_server.cpp.o" "gcc" "src/rpc/CMakeFiles/rpcoib_rpc.dir/socket_server.cpp.o.d"
  "/root/repo/src/rpc/writable.cpp" "src/rpc/CMakeFiles/rpcoib_rpc.dir/writable.cpp.o" "gcc" "src/rpc/CMakeFiles/rpcoib_rpc.dir/writable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rpcoib_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpcoib_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcoib_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
