file(REMOVE_RECURSE
  "librpcoib_rpc.a"
)
