file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_rpc.dir/socket_client.cpp.o"
  "CMakeFiles/rpcoib_rpc.dir/socket_client.cpp.o.d"
  "CMakeFiles/rpcoib_rpc.dir/socket_server.cpp.o"
  "CMakeFiles/rpcoib_rpc.dir/socket_server.cpp.o.d"
  "CMakeFiles/rpcoib_rpc.dir/writable.cpp.o"
  "CMakeFiles/rpcoib_rpc.dir/writable.cpp.o.d"
  "librpcoib_rpc.a"
  "librpcoib_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
