# Empty compiler generated dependencies file for rpcoib_mapred.
# This may be replaced when dependencies are built.
