file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_mapred.dir/jobclient.cpp.o"
  "CMakeFiles/rpcoib_mapred.dir/jobclient.cpp.o.d"
  "CMakeFiles/rpcoib_mapred.dir/jobtracker.cpp.o"
  "CMakeFiles/rpcoib_mapred.dir/jobtracker.cpp.o.d"
  "CMakeFiles/rpcoib_mapred.dir/mr_cluster.cpp.o"
  "CMakeFiles/rpcoib_mapred.dir/mr_cluster.cpp.o.d"
  "CMakeFiles/rpcoib_mapred.dir/tasktracker.cpp.o"
  "CMakeFiles/rpcoib_mapred.dir/tasktracker.cpp.o.d"
  "librpcoib_mapred.a"
  "librpcoib_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
