file(REMOVE_RECURSE
  "librpcoib_mapred.a"
)
