file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_net.dir/fabric.cpp.o"
  "CMakeFiles/rpcoib_net.dir/fabric.cpp.o.d"
  "CMakeFiles/rpcoib_net.dir/params.cpp.o"
  "CMakeFiles/rpcoib_net.dir/params.cpp.o.d"
  "CMakeFiles/rpcoib_net.dir/socket.cpp.o"
  "CMakeFiles/rpcoib_net.dir/socket.cpp.o.d"
  "CMakeFiles/rpcoib_net.dir/testbed.cpp.o"
  "CMakeFiles/rpcoib_net.dir/testbed.cpp.o.d"
  "librpcoib_net.a"
  "librpcoib_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
