# Empty dependencies file for rpcoib_net.
# This may be replaced when dependencies are built.
