file(REMOVE_RECURSE
  "librpcoib_net.a"
)
