file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_hdfs.dir/datanode.cpp.o"
  "CMakeFiles/rpcoib_hdfs.dir/datanode.cpp.o.d"
  "CMakeFiles/rpcoib_hdfs.dir/dfs_client.cpp.o"
  "CMakeFiles/rpcoib_hdfs.dir/dfs_client.cpp.o.d"
  "CMakeFiles/rpcoib_hdfs.dir/hdfs_cluster.cpp.o"
  "CMakeFiles/rpcoib_hdfs.dir/hdfs_cluster.cpp.o.d"
  "CMakeFiles/rpcoib_hdfs.dir/namenode.cpp.o"
  "CMakeFiles/rpcoib_hdfs.dir/namenode.cpp.o.d"
  "librpcoib_hdfs.a"
  "librpcoib_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
