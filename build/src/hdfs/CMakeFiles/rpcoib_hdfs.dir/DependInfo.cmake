
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdfs/datanode.cpp" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/datanode.cpp.o" "gcc" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/datanode.cpp.o.d"
  "/root/repo/src/hdfs/dfs_client.cpp" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/dfs_client.cpp.o" "gcc" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/dfs_client.cpp.o.d"
  "/root/repo/src/hdfs/hdfs_cluster.cpp" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/hdfs_cluster.cpp.o" "gcc" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/hdfs_cluster.cpp.o.d"
  "/root/repo/src/hdfs/namenode.cpp" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/namenode.cpp.o" "gcc" "src/hdfs/CMakeFiles/rpcoib_hdfs.dir/namenode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpcoib/CMakeFiles/rpcoib_oib.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpcoib_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpcoib_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/rpcoib_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcoib_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcoib_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
