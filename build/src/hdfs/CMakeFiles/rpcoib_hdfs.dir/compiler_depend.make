# Empty compiler generated dependencies file for rpcoib_hdfs.
# This may be replaced when dependencies are built.
