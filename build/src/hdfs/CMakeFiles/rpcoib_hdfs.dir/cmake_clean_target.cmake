file(REMOVE_RECURSE
  "librpcoib_hdfs.a"
)
