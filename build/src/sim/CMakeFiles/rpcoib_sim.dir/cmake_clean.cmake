file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_sim.dir/scheduler.cpp.o"
  "CMakeFiles/rpcoib_sim.dir/scheduler.cpp.o.d"
  "librpcoib_sim.a"
  "librpcoib_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
