# Empty compiler generated dependencies file for rpcoib_sim.
# This may be replaced when dependencies are built.
