file(REMOVE_RECURSE
  "librpcoib_sim.a"
)
