file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_verbs.dir/verbs.cpp.o"
  "CMakeFiles/rpcoib_verbs.dir/verbs.cpp.o.d"
  "librpcoib_verbs.a"
  "librpcoib_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
