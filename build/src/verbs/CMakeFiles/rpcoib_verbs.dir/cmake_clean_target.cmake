file(REMOVE_RECURSE
  "librpcoib_verbs.a"
)
