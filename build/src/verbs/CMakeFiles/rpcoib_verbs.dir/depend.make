# Empty dependencies file for rpcoib_verbs.
# This may be replaced when dependencies are built.
