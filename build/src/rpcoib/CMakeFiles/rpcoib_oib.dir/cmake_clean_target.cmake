file(REMOVE_RECURSE
  "librpcoib_oib.a"
)
