file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_oib.dir/buffer_pool.cpp.o"
  "CMakeFiles/rpcoib_oib.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/rpcoib_oib.dir/engine.cpp.o"
  "CMakeFiles/rpcoib_oib.dir/engine.cpp.o.d"
  "CMakeFiles/rpcoib_oib.dir/rdma_client.cpp.o"
  "CMakeFiles/rpcoib_oib.dir/rdma_client.cpp.o.d"
  "CMakeFiles/rpcoib_oib.dir/rdma_server.cpp.o"
  "CMakeFiles/rpcoib_oib.dir/rdma_server.cpp.o.d"
  "librpcoib_oib.a"
  "librpcoib_oib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_oib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
