# Empty dependencies file for rpcoib_oib.
# This may be replaced when dependencies are built.
