file(REMOVE_RECURSE
  "librpcoib_metrics.a"
)
