# Empty dependencies file for rpcoib_metrics.
# This may be replaced when dependencies are built.
