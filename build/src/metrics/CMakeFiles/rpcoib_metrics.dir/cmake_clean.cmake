file(REMOVE_RECURSE
  "CMakeFiles/rpcoib_metrics.dir/table.cpp.o"
  "CMakeFiles/rpcoib_metrics.dir/table.cpp.o.d"
  "librpcoib_metrics.a"
  "librpcoib_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcoib_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
