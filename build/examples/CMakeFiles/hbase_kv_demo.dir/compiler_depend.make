# Empty compiler generated dependencies file for hbase_kv_demo.
# This may be replaced when dependencies are built.
