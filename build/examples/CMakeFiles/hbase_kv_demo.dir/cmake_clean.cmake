file(REMOVE_RECURSE
  "CMakeFiles/hbase_kv_demo.dir/hbase_kv_demo.cpp.o"
  "CMakeFiles/hbase_kv_demo.dir/hbase_kv_demo.cpp.o.d"
  "hbase_kv_demo"
  "hbase_kv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbase_kv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
