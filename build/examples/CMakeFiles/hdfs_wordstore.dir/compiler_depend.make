# Empty compiler generated dependencies file for hdfs_wordstore.
# This may be replaced when dependencies are built.
