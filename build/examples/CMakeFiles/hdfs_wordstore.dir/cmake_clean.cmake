file(REMOVE_RECURSE
  "CMakeFiles/hdfs_wordstore.dir/hdfs_wordstore.cpp.o"
  "CMakeFiles/hdfs_wordstore.dir/hdfs_wordstore.cpp.o.d"
  "hdfs_wordstore"
  "hdfs_wordstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_wordstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
