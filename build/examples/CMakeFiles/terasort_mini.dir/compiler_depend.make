# Empty compiler generated dependencies file for terasort_mini.
# This may be replaced when dependencies are built.
