file(REMOVE_RECURSE
  "CMakeFiles/terasort_mini.dir/terasort_mini.cpp.o"
  "CMakeFiles/terasort_mini.dir/terasort_mini.cpp.o.d"
  "terasort_mini"
  "terasort_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terasort_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
