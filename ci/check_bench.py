#!/usr/bin/env python3
"""Benchmark-regression gate for the RPCoIB reproduction.

Reads the --json-out files produced by the bench binaries, computes the
RPCoIB-vs-IPoIB ratios the paper's results hinge on, and fails (exit 1)
when any ratio or absolute endpoint exceeds its limit in
ci/bench_thresholds.json.

Each JSON file self-identifies through its "bench" key; any mix of the
known benches may be passed in any order.

Usage: check_bench.py THRESHOLDS BENCH_JSON [BENCH_JSON...]

Stdlib only -- runs on a bare CI python3.
"""

import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def check_fig5_latency(t, data, failures):
    limit = t["max_rpcoib_over_ipoib"]
    for row in data["rows"]:
        ratio = row["rpcoib_us"] / row["ipoib_us"]
        print(f"fig5 {row['bytes']:>5} B: rpcoib/ipoib = {ratio:.3f} (limit {limit})")
        if ratio > limit:
            failures.append(
                f"fig5 @{row['bytes']} B: rpcoib/ipoib ratio {ratio:.3f} > {limit}"
            )
    by_bytes = {row["bytes"]: row for row in data["rows"]}
    for nbytes, key in ((1, "max_rpcoib_us_at_1b"), (4096, "max_rpcoib_us_at_4kb")):
        if nbytes not in by_bytes:
            failures.append(f"fig5: missing {nbytes} B row")
            continue
        us = by_bytes[nbytes]["rpcoib_us"]
        print(f"fig5 {nbytes:>5} B: rpcoib = {us:.1f} us (limit {t[key]})")
        if us > t[key]:
            failures.append(f"fig5 @{nbytes} B: rpcoib {us:.1f} us > {t[key]} us")


def check_fig5_throughput(t, data, failures):
    peak_rpcoib = max(row["rpcoib_kops"] for row in data["rows"])
    peak_ipoib = max(row["ipoib_kops"] for row in data["rows"])
    ratio = peak_rpcoib / peak_ipoib
    lim = t["min_rpcoib_over_ipoib_peak"]
    print(f"fig5b peak: rpcoib/ipoib = {ratio:.3f} (min {lim})")
    if ratio < lim:
        failures.append(f"fig5b peak: rpcoib/ipoib ratio {ratio:.3f} < {lim}")
    kops_lim = t["min_rpcoib_peak_kops"]
    print(f"fig5b peak: rpcoib = {peak_rpcoib:.1f} Kops/s (min {kops_lim})")
    if peak_rpcoib < kops_lim:
        failures.append(f"fig5b peak: rpcoib {peak_rpcoib:.1f} Kops/s < {kops_lim}")

    # Shard-scaling gate (server.shards): sharding the receive/dispatch
    # chain must actually lift the throughput ceiling, and one shard must
    # stay as fast as the seed's unsharded server.
    shard_rows = {row["shards"]: row for row in data.get("shard_rows", [])}
    if 1 not in shard_rows or 4 not in shard_rows:
        failures.append("fig5b: missing shards=1 or shards=4 row in shard_rows")
        return
    scaling = shard_rows[4]["rpcoib_kops"] / shard_rows[1]["rpcoib_kops"]
    lim = t["min_shard4_over_shard1_rpcoib"]
    print(f"fig5b shards: rpcoib 4-shard/1-shard peak = {scaling:.3f}x (min {lim})")
    if scaling < lim:
        failures.append(f"fig5b shards: 4-shard/1-shard ratio {scaling:.3f} < {lim}")
    base = shard_rows[1]["rpcoib_kops"]
    lim = t["min_shard1_rpcoib_kops"]
    print(f"fig5b shards: rpcoib 1-shard peak = {base:.1f} Kops/s (min {lim})")
    if base < lim:
        failures.append(f"fig5b shards: 1-shard rpcoib {base:.1f} Kops/s < {lim}")


def check_fig5_batched(t, data, failures):
    # Small-message coalescing must keep paying in the shared-connection
    # regime: batched/plain calls-per-second ratio per transport.
    by_transport = {row["transport"]: row for row in data["rows"]}
    for transport, key in (("RPC-IPoIB", "min_batched_over_plain_socket"),
                           ("RPCoIB", "min_batched_over_plain_rpcoib")):
        if transport not in by_transport:
            failures.append(f"fig5_batched: missing {transport} row")
            continue
        ratio = by_transport[transport]["ratio"]
        lim = t[key]
        print(f"fig5_batched {transport:>9}: batched/plain = {ratio:.3f} (min {lim})")
        if ratio < lim:
            failures.append(
                f"fig5_batched {transport}: batched/plain ratio {ratio:.3f} < {lim}"
            )


def check_fig6_sort(t, data, failures):
    checks = (
        ("rw", "rw_rpcoib_s", "rw_ipoib_s", t["max_rpcoib_over_ipoib_rw"]),
        ("sort", "sort_rpcoib_s", "sort_ipoib_s", t["max_rpcoib_over_ipoib_sort"]),
    )
    for row in data["rows"]:
        for name, rpcoib_key, ipoib_key, lim in checks:
            ratio = row[rpcoib_key] / row[ipoib_key]
            print(
                f"fig6 {row['gb']:>4} GB {name:>4}: rpcoib/ipoib = {ratio:.4f}"
                f" (limit {lim})"
            )
            if ratio > lim:
                failures.append(
                    f"fig6 @{row['gb']} GB {name}: ratio {ratio:.4f} > {lim}"
                )


def check_fig7_hdfs_write(t, data, failures):
    # The paper's headline: the RDMA data path with RPCoIB beats the same
    # data path with socket RPC at the largest write.
    gb = max(row["gb"] for row in data["rows"])
    by_config = {
        row["config"]: row["secs"] for row in data["rows"] if row["gb"] == gb
    }
    ipoib_key, rpcoib_key = "HDFSoIB-RPC(IPoIB)", "HDFSoIB-RPCoIB"
    if ipoib_key not in by_config or rpcoib_key not in by_config:
        failures.append(f"fig7: missing {ipoib_key} or {rpcoib_key} row at {gb} GB")
        return
    ratio = by_config[rpcoib_key] / by_config[ipoib_key]
    lim = t["max_rpcoib_over_ipoib"]
    print(f"fig7 {gb:>4} GB: rpcoib/ipoib write time = {ratio:.4f} (limit {lim})")
    if ratio > lim:
        failures.append(f"fig7 @{gb} GB: write-time ratio {ratio:.4f} > {lim}")

    # The bulk-streaming subsystem must keep beating the one-shot
    # rendezvous pipeline at the largest write.
    streamed_key = "HDFSoIB-RPCoIB-streamed"
    if streamed_key not in by_config:
        failures.append(f"fig7: missing {streamed_key} row at {gb} GB")
        return
    ratio = by_config[streamed_key] / by_config[rpcoib_key]
    lim = t["max_streamed_over_oneshot"]
    print(f"fig7 {gb:>4} GB: streamed/oneshot write time = {ratio:.4f} (limit {lim})")
    if ratio > lim:
        failures.append(f"fig7 @{gb} GB: streamed/oneshot ratio {ratio:.4f} > {lim}")


def check_fig8_hbase(t, data, failures):
    # Per-mix gate at the largest record count: RPCoIB must keep beating
    # socket RPC on the RDMA HBase transport.
    records = max(row["records"] for row in data["rows"])
    ipoib_key, rpcoib_key = "HBaseoIB-RPC(IPoIB)", "HBaseoIB-RPCoIB"
    for mix, key in (("get", "min_rpcoib_over_ipoib_get"),
                     ("put", "min_rpcoib_over_ipoib_put"),
                     ("mixed", "min_rpcoib_over_ipoib_mixed")):
        by_config = {
            row["config"]: row["kops"]
            for row in data["rows"]
            if row["mix"] == mix and row["records"] == records
        }
        if ipoib_key not in by_config or rpcoib_key not in by_config:
            failures.append(f"fig8 {mix}: missing {ipoib_key} or {rpcoib_key} row")
            continue
        ratio = by_config[rpcoib_key] / by_config[ipoib_key]
        lim = t[key]
        print(f"fig8 {mix:>5}: rpcoib/ipoib = {ratio:.3f} (min {lim})")
        if ratio < lim:
            failures.append(f"fig8 {mix}: rpcoib/ipoib ratio {ratio:.3f} < {lim}")


def check_stream_bw(t, data, failures):
    # The streaming subsystem's headline: pipelined chunked streaming must
    # beat the one-shot rendezvous block pipeline at the default geometry
    # (256 KB chunks, ring depth 4), hold a bandwidth floor, and the ring
    # must actually pipeline (depth >1 beats the serialized depth-1 ring).
    by_geom = {(row["chunk_kb"], row["depth"]): row for row in data["rows"]}
    default = by_geom.get((256, 4))
    if default is None:
        failures.append("stream_bw: missing 256 KB x depth-4 row")
        return
    lim = t["min_speedup_default_geometry"]
    print(f"stream_bw 256KB x4: streamed/oneshot speedup = "
          f"{default['speedup']:.3f}x (min {lim})")
    if default["speedup"] < lim:
        failures.append(
            f"stream_bw: default-geometry speedup {default['speedup']:.3f}x < {lim}x"
        )
    lim = t["min_default_geometry_mib_s"]
    print(f"stream_bw 256KB x4: {default['mib_s']:.1f} MiB/s (min {lim})")
    if default["mib_s"] < lim:
        failures.append(f"stream_bw: bandwidth {default['mib_s']:.1f} MiB/s < {lim}")
    shallow = by_geom.get((256, 1))
    if shallow is None:
        failures.append("stream_bw: missing 256 KB x depth-1 row")
        return
    overlap = default["speedup"] / shallow["speedup"]
    lim = t["min_deep_over_shallow_ring"]
    print(f"stream_bw 256KB: depth-4/depth-1 overlap ratio = {overlap:.3f} (min {lim})")
    if overlap < lim:
        failures.append(f"stream_bw: overlap ratio {overlap:.3f} < {lim}")


def check_srq_scale(t, data, failures):
    # The SRQ's headline: registered receive memory stays flat as the
    # connection count sweeps, while legacy per-QP rings grow linearly.
    by_mode = {}
    for row in data["rows"]:
        by_mode.setdefault(row["mode"], {})[row["conns"]] = row
    for mode in ("perqp", "srq"):
        if mode not in by_mode:
            failures.append(f"srq_scale: missing {mode!r} rows")
            return
    lo = min(by_mode["srq"])
    hi = max(by_mode["srq"])
    if hi <= lo:
        failures.append("srq_scale: need at least two connection counts")
        return

    growth = (by_mode["srq"][hi]["ring_bytes_peak"]
              / by_mode["srq"][lo]["ring_bytes_peak"])
    lim = t["max_srq_ring_growth"]
    print(f"srq_scale srq ring growth {lo}->{hi} conns = {growth:.3f}x (limit {lim})")
    if growth > lim:
        failures.append(f"srq_scale: srq ring growth {growth:.3f}x > {lim}x")

    if hi not in by_mode["perqp"]:
        failures.append(f"srq_scale: missing perqp row at {hi} conns")
        return
    mem_ratio = (by_mode["srq"][hi]["ring_bytes_peak"]
                 / by_mode["perqp"][hi]["ring_bytes_peak"])
    lim = t["max_srq_over_perqp_ring_at_max_conns"]
    print(f"srq_scale @{hi} conns: srq/perqp ring bytes = {mem_ratio:.4f} (limit {lim})")
    if mem_ratio > lim:
        failures.append(
            f"srq_scale @{hi} conns: srq/perqp ring ratio {mem_ratio:.4f} > {lim}"
        )

    lim = t["max_srq_over_perqp_latency"]
    for conns in sorted(by_mode["srq"]):
        if conns not in by_mode["perqp"]:
            continue
        lat = by_mode["srq"][conns]["mean_us"] / by_mode["perqp"][conns]["mean_us"]
        print(f"srq_scale @{conns} conns: srq/perqp mean us = {lat:.3f} (limit {lim})")
        if lat > lim:
            failures.append(
                f"srq_scale @{conns} conns: latency ratio {lat:.3f} > {lim}"
            )


def check_ud_scale(t, data, failures):
    # The UD datagram path's headline: the server's registered receive
    # memory is a property of its fixed endpoint pool, not of the client
    # count, so it must stay flat across the whole 4 -> 16k sweep while
    # small-call latency stays within a small factor of the RC baseline.
    by_mode = {}
    for row in data["rows"]:
        by_mode.setdefault(row["mode"], {})[row["conns"]] = row
    for mode in ("rc", "ud"):
        if mode not in by_mode:
            failures.append(f"ud_scale: missing {mode!r} rows")
            return
    lo = min(by_mode["ud"])
    hi = max(by_mode["ud"])
    if hi <= lo:
        failures.append("ud_scale: need at least two connection counts")
        return

    growth = (by_mode["ud"][hi]["ring_bytes_peak"]
              / by_mode["ud"][lo]["ring_bytes_peak"])
    lim = t["max_ud_ring_growth"]
    print(f"ud_scale ud ring growth {lo}->{hi} conns = {growth:.3f}x (limit {lim})")
    if growth > lim:
        failures.append(f"ud_scale: ud ring growth {growth:.3f}x > {lim}x")

    if by_mode["ud"][hi].get("ud_datagrams", 0) <= 0:
        failures.append(
            f"ud_scale @{hi} conns: no datagrams reached the server's UD path"
        )

    lim = t["max_ud_over_rc_latency"]
    for conns in sorted(by_mode["ud"]):
        if conns not in by_mode["rc"]:
            continue
        lat = by_mode["ud"][conns]["mean_us"] / by_mode["rc"][conns]["mean_us"]
        print(f"ud_scale @{conns} conns: ud/rc mean us = {lat:.3f} (limit {lim})")
        if lat > lim:
            failures.append(
                f"ud_scale @{conns} conns: latency ratio {lat:.3f} > {lim}"
            )


def check_onesided(t, data, failures):
    # The one-sided READ plane's headline: hot-key gets against a
    # CPU-loaded server must beat plain RPC by the crossover factor
    # (published keys bypass the handler chain entirely), and the
    # write-hot leg must degrade through the bounded conflict fallback
    # without ever serving a torn or recycled value.
    rows = {(r["skew"], r["load"], r["mode"]): r for r in data["rows"]}
    rpc = rows.get(("hot", "loaded", "rpc"))
    onesided = rows.get(("hot", "loaded", "onesided"))
    if rpc is None or onesided is None:
        failures.append("onesided: missing hot/loaded rpc or onesided row")
        return
    ratio = onesided["ops_per_sec"] / rpc["ops_per_sec"]
    lim = t["min_onesided_over_rpc_hot_loaded"]
    print(f"onesided hot/loaded: onesided/rpc = {ratio:.3f}x (min {lim})")
    if ratio < lim:
        failures.append(f"onesided hot/loaded: throughput ratio {ratio:.3f} < {lim}")
    if onesided.get("onesided_reads", 0) <= 0:
        failures.append("onesided hot/loaded: no call resolved via RDMA READ")

    conflict = rows.get(("hot", "write-hot", "onesided"))
    if conflict is None:
        failures.append("onesided: missing write-hot conflict row")
        return
    fb = conflict.get("conflict_fallbacks", 0)
    lim = t["min_conflict_fallbacks"]
    print(f"onesided write-hot: conflict fallbacks = {fb} (min {lim})")
    if fb < lim:
        failures.append(f"onesided write-hot: only {fb} conflict fallbacks < {lim}")
    for row in data["rows"]:
        if not row.get("correct", False):
            failures.append(
                f"onesided {row['skew']}/{row['load']}/{row['mode']}: "
                "served a value that was never published"
            )


CHECKS = {
    "fig5_latency": check_fig5_latency,
    "fig5_throughput": check_fig5_throughput,
    "fig5_batched": check_fig5_batched,
    "fig6_sort": check_fig6_sort,
    "fig7_hdfs_write": check_fig7_hdfs_write,
    "fig8_hbase": check_fig8_hbase,
    "srq_scale": check_srq_scale,
    "ud_scale": check_ud_scale,
    "onesided": check_onesided,
    "stream_bw": check_stream_bw,
}


def write_step_summary(results, failures):
    """Per-bench pass/fail markdown for the GitHub Actions step summary
    (no-op outside Actions: $GITHUB_STEP_SUMMARY unset)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write("### Bench gate\n\n| bench | result |\n|---|---|\n")
        for bench, n_failed in results:
            mark = "✅ pass" if n_failed == 0 else f"❌ {n_failed} failed"
            f.write(f"| {bench} | {mark} |\n")
        if failures:
            f.write("\n")
            for fail in failures:
                f.write(f"- ❌ {fail}\n")


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_bench.py THRESHOLDS BENCH_JSON [BENCH_JSON...]",
            file=sys.stderr,
        )
        return 2
    thresholds = load(argv[1])
    failures = []
    results = []  # (bench key, failure count) per input file, in order

    for path in argv[2:]:
        data = load(path)
        bench = data.get("bench")
        before = len(failures)
        if bench not in CHECKS:
            failures.append(f"{path}: unknown bench {bench!r}")
        elif bench not in thresholds:
            failures.append(f"{path}: no thresholds for {bench!r}")
        else:
            CHECKS[bench](thresholds[bench], data, failures)
        results.append((bench or path, len(failures) - before))

    write_step_summary(results, failures)
    for bench, n_failed in results:
        print(f"{bench}: {'pass' if n_failed == 0 else f'{n_failed} FAILED'}")
    if failures:
        print("\nbench gate: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
