#!/usr/bin/env python3
"""Benchmark-regression gate for the RPCoIB reproduction.

Reads the --json-out files produced by bench_fig5_latency and
bench_fig6_sort, computes the RPCoIB-vs-IPoIB ratios the paper's results
hinge on, and fails (exit 1) when any ratio or absolute endpoint exceeds
its limit in ci/bench_thresholds.json.

Usage: check_bench.py THRESHOLDS FIG5_JSON FIG6_JSON

Stdlib only -- runs on a bare CI python3.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) != 4:
        print("usage: check_bench.py THRESHOLDS FIG5_JSON FIG6_JSON", file=sys.stderr)
        return 2
    thresholds = load(argv[1])
    fig5 = load(argv[2])
    fig6 = load(argv[3])
    failures = []

    t5 = thresholds["fig5_latency"]
    limit = t5["max_rpcoib_over_ipoib"]
    for row in fig5["rows"]:
        ratio = row["rpcoib_us"] / row["ipoib_us"]
        print(f"fig5 {row['bytes']:>5} B: rpcoib/ipoib = {ratio:.3f} (limit {limit})")
        if ratio > limit:
            failures.append(
                f"fig5 @{row['bytes']} B: rpcoib/ipoib ratio {ratio:.3f} > {limit}"
            )
    by_bytes = {row["bytes"]: row for row in fig5["rows"]}
    for nbytes, key in ((1, "max_rpcoib_us_at_1b"), (4096, "max_rpcoib_us_at_4kb")):
        if nbytes not in by_bytes:
            failures.append(f"fig5: missing {nbytes} B row")
            continue
        us = by_bytes[nbytes]["rpcoib_us"]
        print(f"fig5 {nbytes:>5} B: rpcoib = {us:.1f} us (limit {t5[key]})")
        if us > t5[key]:
            failures.append(f"fig5 @{nbytes} B: rpcoib {us:.1f} us > {t5[key]} us")

    t6 = thresholds["fig6_sort"]
    checks = (
        ("rw", "rw_rpcoib_s", "rw_ipoib_s", t6["max_rpcoib_over_ipoib_rw"]),
        ("sort", "sort_rpcoib_s", "sort_ipoib_s", t6["max_rpcoib_over_ipoib_sort"]),
    )
    for row in fig6["rows"]:
        for name, rpcoib_key, ipoib_key, lim in checks:
            ratio = row[rpcoib_key] / row[ipoib_key]
            print(
                f"fig6 {row['gb']:>4} GB {name:>4}: rpcoib/ipoib = {ratio:.4f}"
                f" (limit {lim})"
            )
            if ratio > lim:
                failures.append(
                    f"fig6 @{row['gb']} GB {name}: ratio {ratio:.4f} > {lim}"
                )

    if failures:
        print("\nbench gate: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
